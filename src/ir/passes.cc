#include "src/ir/passes.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/check.h"

namespace sgxb {

namespace {

// Definition map: value id -> copy of the defining instruction.
std::unordered_map<ValueId, IrInstr> BuildDefs(const IrFunction& fn) {
  std::unordered_map<ValueId, IrInstr> defs;
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.id != 0) {
        defs[instr.id] = instr;
      }
    }
  }
  return defs;
}

// Resolves through kMaskPtr to the original pointer definition.
const IrInstr* ResolvePtrDef(const std::unordered_map<ValueId, IrInstr>& defs, ValueId v) {
  auto it = defs.find(v);
  if (it == defs.end()) {
    return nullptr;
  }
  if (it->second.op == IrOp::kMaskPtr) {
    // arg1 is the pre-arithmetic pointer; arg0 the raw gep. Use the raw gep.
    return ResolvePtrDef(defs, it->second.args[0]);
  }
  return &it->second;
}

// Statically known object size for a pointer-producing value, or 0.
uint32_t StaticObjectSize(const std::unordered_map<ValueId, IrInstr>& defs, ValueId v) {
  auto it = defs.find(v);
  if (it == defs.end()) {
    return 0;
  }
  const IrInstr& def = it->second;
  if (def.op == IrOp::kAlloca) {
    return static_cast<uint32_t>(def.imm);
  }
  if (def.op == IrOp::kMalloc) {
    auto size_def = defs.find(def.args[0]);
    if (size_def != defs.end() && size_def->second.op == IrOp::kConst) {
      return static_cast<uint32_t>(size_def->second.imm);
    }
  }
  return 0;
}

bool SafeAccessImpl(const std::unordered_map<ValueId, IrInstr>& defs, const IrInstr& access) {
  const ValueId ptr = access.op == IrOp::kLoad ? access.args[0] : access.args[1];
  const uint32_t size = IrTypeSize(access.type);
  const IrInstr* def = ResolvePtrDef(defs, ptr);
  if (def == nullptr) {
    return false;
  }
  if (def->op == IrOp::kAlloca || def->op == IrOp::kMalloc) {
    // Direct access at offset 0.
    return StaticObjectSize(defs, def->id) >= size;
  }
  if (def->op != IrOp::kGep) {
    return false;
  }
  const uint32_t obj_size = StaticObjectSize(defs, def->args[0]);
  if (obj_size == 0) {
    return false;
  }
  auto index_def = defs.find(def->args[1]);
  if (index_def == defs.end() || index_def->second.op != IrOp::kConst) {
    return false;
  }
  const int64_t index = index_def->second.imm;
  if (index < 0) {
    return false;
  }
  const int64_t last = index * def->imm + def->imm2 + size;
  return last <= static_cast<int64_t>(obj_size);
}

}  // namespace

bool IsProvablySafeAccess(const IrFunction& fn, uint32_t block, size_t instr_index) {
  const auto defs = BuildDefs(fn);
  return SafeAccessImpl(defs, fn.blocks[block].instrs[instr_index]);
}

std::vector<LoopInfo> FindCountedLoops(const IrFunction& fn) {
  std::vector<LoopInfo> loops;
  const auto defs = BuildDefs(fn);
  for (uint32_t h = 0; h < fn.blocks.size(); ++h) {
    const IrBlock& header = fn.blocks[h];
    if (header.preds.size() != 2 || header.instrs.size() < 2) {
      continue;
    }
    const IrInstr& phi = header.instrs.front();
    const IrInstr& term = header.instrs.back();
    if (phi.op != IrOp::kPhi || term.op != IrOp::kCondBr) {
      continue;
    }
    // condbr cond, body, exit  where cond = icmp slt phi, bound
    auto cond_def = defs.find(term.args[0]);
    if (cond_def == defs.end() || cond_def->second.op != IrOp::kICmp ||
        static_cast<IrCmp>(cond_def->second.imm) != IrCmp::kSLt ||
        cond_def->second.args[0] != phi.id) {
      continue;
    }
    const ValueId bound = cond_def->second.args[1];
    // One incoming is the start (preheader), the other is phi + const step.
    LoopInfo loop;
    loop.header = h;
    loop.iv = phi.id;
    loop.bound = bound;
    bool found_step = false;
    for (size_t p = 0; p < header.preds.size(); ++p) {
      auto inc_def = defs.find(phi.args[p]);
      const bool is_step = inc_def != defs.end() && inc_def->second.op == IrOp::kAdd &&
                           inc_def->second.args[0] == phi.id;
      if (is_step) {
        auto step_def = defs.find(inc_def->second.args[1]);
        if (step_def == defs.end() || step_def->second.op != IrOp::kConst) {
          continue;
        }
        loop.step = step_def->second.imm;
        found_step = true;
      } else {
        loop.preheader = header.preds[p];
        loop.start = phi.args[p];
      }
    }
    if (!found_step || loop.step <= 0) {
      continue;
    }
    // Body blocks: those reachable from the true-target without re-entering
    // header or exit.
    const uint32_t body = static_cast<uint32_t>(term.imm);
    const uint32_t exit = static_cast<uint32_t>(term.imm2);
    std::unordered_set<uint32_t> body_set;
    std::vector<uint32_t> worklist{body};
    while (!worklist.empty()) {
      const uint32_t b = worklist.back();
      worklist.pop_back();
      if (b == h || b == exit || body_set.count(b) != 0) {
        continue;
      }
      body_set.insert(b);
      const IrInstr& t = fn.blocks[b].instrs.back();
      if (t.op == IrOp::kBr) {
        worklist.push_back(static_cast<uint32_t>(t.imm));
      } else if (t.op == IrOp::kCondBr) {
        worklist.push_back(static_cast<uint32_t>(t.imm));
        worklist.push_back(static_cast<uint32_t>(t.imm2));
      }
    }
    loop.body_blocks.assign(body_set.begin(), body_set.end());
    loops.push_back(std::move(loop));
  }
  return loops;
}

namespace {

// Shared implementation of the tagged-pointer lowering (SS5.1 + SS4.4):
// the SGXBounds pass and the generic registry-scheme pass differ only in
// which check opcodes they emit and which allocation symbol they stamp.
SgxPassStats RunTaggedPtrPassImpl(IrFunction& fn, const SgxPassOptions& options,
                                  IrOp check_op, IrOp range_check_op,
                                  const char* symbol) {
  SgxPassStats stats;
  const auto defs = BuildDefs(fn);
  const auto loops = FindCountedLoops(fn);

  // Map: block -> loop whose body contains it (canonical loops don't share
  // body blocks in builder output).
  std::unordered_map<uint32_t, const LoopInfo*> loop_of_block;
  for (const auto& loop : loops) {
    for (uint32_t b : loop.body_blocks) {
      loop_of_block[b] = &loop;
    }
  }

  // Hoisted range checks to add to preheaders: (preheader, base, bound,
  // scale, offset+size).
  struct RangeCheck {
    uint32_t preheader;
    ValueId base;
    ValueId bound;
    int64_t scale;
    int64_t tail;
  };
  std::vector<RangeCheck> range_checks;
  // Deduplicate hoisted checks per (preheader, base): one range check covers
  // all accesses to the same array in the loop (keep the max tail).
  auto add_range_check = [&](const RangeCheck& rc) {
    for (auto& existing : range_checks) {
      if (existing.preheader == rc.preheader && existing.base == rc.base &&
          existing.bound == rc.bound && existing.scale == rc.scale) {
        existing.tail = std::max(existing.tail, rc.tail);
        return;
      }
    }
    range_checks.push_back(rc);
  };

  // Decide, per access, whether its check can be hoisted.
  auto hoistable = [&](uint32_t block, const IrInstr& access, RangeCheck* rc) {
    if (!options.hoist_loops) {
      return false;
    }
    auto it = loop_of_block.find(block);
    if (it == loop_of_block.end()) {
      return false;
    }
    const LoopInfo& loop = *it->second;
    const ValueId ptr = access.op == IrOp::kLoad ? access.args[0] : access.args[1];
    auto def_it = defs.find(ptr);
    if (def_it == defs.end() || def_it->second.op != IrOp::kGep) {
      return false;
    }
    const IrInstr& gep = def_it->second;
    if (gep.args[1] != loop.iv) {
      return false;  // index is not the affine IV
    }
    // Base must be defined before the loop header's phi (loop-invariant).
    if (gep.args[0] >= loop.iv) {
      return false;
    }
    const int64_t stride = gep.imm * loop.step;
    if (stride <= 0 || stride > static_cast<int64_t>(options.max_hoist_stride)) {
      return false;  // SS4.4 restriction
    }
    rc->preheader = loop.preheader;
    rc->base = gep.args[0];
    rc->bound = loop.bound;
    rc->scale = gep.imm;
    // The last iteration uses iv = bound - step, so the furthest byte touched
    // is (bound - step)*scale + offset + size = bound*scale + tail with
    // tail = offset + size - step*scale.
    rc->tail = gep.imm2 + IrTypeSize(access.type) - loop.step * gep.imm;
    return true;
  };

  // Rewrite each block: tag allocations, mask geps, insert checks.
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    std::vector<IrInstr> out;
    out.reserve(fn.blocks[b].instrs.size() * 2);
    for (auto& instr : fn.blocks[b].instrs) {
      switch (instr.op) {
        case IrOp::kMalloc:
        case IrOp::kAlloca:
        case IrOp::kFree:
          instr.symbol = symbol;
          out.push_back(instr);
          break;
        case IrOp::kGep: {
          // Rename the gep result and re-tag via kMaskPtr under the original
          // id, so existing uses see the masked pointer.
          IrInstr gep = instr;
          const ValueId original = gep.id;
          gep.id = fn.num_values++;
          out.push_back(gep);
          IrInstr mask;
          mask.id = original;
          mask.op = IrOp::kMaskPtr;
          mask.type = IrType::kPtr;
          mask.args = {gep.id, gep.args[0]};
          out.push_back(mask);
          ++stats.geps_masked;
          break;
        }
        case IrOp::kLoad:
        case IrOp::kStore: {
          const ValueId ptr = instr.op == IrOp::kLoad ? instr.args[0] : instr.args[1];
          RangeCheck rc;
          if (options.elide_safe && SafeAccessImpl(defs, instr)) {
            ++stats.checks_elided_safe;
          } else if (hoistable(b, instr, &rc)) {
            add_range_check(rc);
            ++stats.checks_hoisted;
          } else {
            IrInstr check;
            check.op = check_op;
            check.args = {ptr};
            check.imm = IrTypeSize(instr.type);
            check.imm2 = instr.op == IrOp::kStore ? 1 : 0;
            out.push_back(check);
            ++stats.checks_inserted;
          }
          out.push_back(instr);
          break;
        }
        default:
          out.push_back(instr);
          break;
      }
    }
    fn.blocks[b].instrs = std::move(out);
  }

  // Materialize hoisted range checks in preheaders, before the terminator:
  //   extent = bound * scale + tail ; sgx.check.range base, extent
  for (const auto& rc : range_checks) {
    auto& instrs = fn.blocks[rc.preheader].instrs;
    CHECK(!instrs.empty());
    std::vector<IrInstr> seq;
    IrInstr c1;
    c1.id = fn.num_values++;
    c1.op = IrOp::kConst;
    c1.imm = rc.scale;
    seq.push_back(c1);
    IrInstr mul;
    mul.id = fn.num_values++;
    mul.op = IrOp::kMul;
    mul.args = {rc.bound, c1.id};
    seq.push_back(mul);
    IrInstr c2;
    c2.id = fn.num_values++;
    c2.op = IrOp::kConst;
    c2.imm = rc.tail;
    seq.push_back(c2);
    IrInstr add;
    add.id = fn.num_values++;
    add.op = IrOp::kAdd;
    add.args = {mul.id, c2.id};
    seq.push_back(add);
    IrInstr check;
    check.op = range_check_op;
    check.args = {rc.base, add.id};
    seq.push_back(check);
    instrs.insert(instrs.end() - 1, seq.begin(), seq.end());
  }

  return stats;
}

}  // namespace

SgxPassStats RunSgxBoundsPass(IrFunction& fn, const SgxPassOptions& options) {
  return RunTaggedPtrPassImpl(fn, options, IrOp::kSgxCheck, IrOp::kSgxCheckRange, "sgx");
}

SgxPassStats RunSchemePass(IrFunction& fn, const SgxPassOptions& options) {
  return RunTaggedPtrPassImpl(fn, options, IrOp::kSchemeCheck, IrOp::kSchemeCheckRange,
                              "scheme");
}

BaselinePassStats RunAsanPass(IrFunction& fn) {
  BaselinePassStats stats;
  for (auto& block : fn.blocks) {
    std::vector<IrInstr> out;
    out.reserve(block.instrs.size() * 2);
    for (auto& instr : block.instrs) {
      switch (instr.op) {
        case IrOp::kMalloc:
        case IrOp::kAlloca:
        case IrOp::kFree:
          instr.symbol = "asan";
          out.push_back(instr);
          break;
        case IrOp::kLoad:
        case IrOp::kStore: {
          IrInstr check;
          check.op = IrOp::kAsanCheck;
          check.args = {instr.op == IrOp::kLoad ? instr.args[0] : instr.args[1]};
          check.imm = IrTypeSize(instr.type);
          check.imm2 = instr.op == IrOp::kStore ? 1 : 0;
          out.push_back(check);
          ++stats.checks_inserted;
          out.push_back(instr);
          break;
        }
        default:
          out.push_back(instr);
          break;
      }
    }
    block.instrs = std::move(out);
  }
  return stats;
}

BaselinePassStats RunMpxPass(IrFunction& fn) {
  BaselinePassStats stats;
  for (auto& block : fn.blocks) {
    std::vector<IrInstr> out;
    out.reserve(block.instrs.size() * 2);
    for (auto& instr : block.instrs) {
      switch (instr.op) {
        case IrOp::kLoad: {
          IrInstr check;
          check.op = IrOp::kMpxCheck;
          check.args = {instr.args[0]};
          check.imm = IrTypeSize(instr.type);
          out.push_back(check);
          ++stats.checks_inserted;
          out.push_back(instr);
          if (instr.type == IrType::kPtr) {
            // Loaded a pointer: fetch its bounds from the tables.
            IrInstr ldx;
            ldx.op = IrOp::kMpxLdx;
            ldx.args = {instr.id, instr.args[0]};
            out.push_back(ldx);
            ++stats.ptr_loads_instrumented;
          }
          break;
        }
        case IrOp::kStore: {
          IrInstr check;
          check.op = IrOp::kMpxCheck;
          check.args = {instr.args[1]};
          check.imm = IrTypeSize(instr.type);
          out.push_back(check);
          ++stats.checks_inserted;
          out.push_back(instr);
          if (instr.type == IrType::kPtr) {
            IrInstr stx;
            stx.op = IrOp::kMpxStx;
            stx.args = {instr.args[0], instr.args[1]};
            out.push_back(stx);
            ++stats.ptr_stores_instrumented;
          }
          break;
        }
        default:
          out.push_back(instr);
          break;
      }
    }
    block.instrs = std::move(out);
  }
  return stats;
}

}  // namespace sgxb
