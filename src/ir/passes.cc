#include "src/ir/passes.h"

namespace sgxb {

namespace {

CheckPassConfig ConfigFrom(const SgxPassOptions& options) {
  CheckPassConfig config;
  config.elide_safe = options.elide_safe;
  config.hoist_loops = options.hoist_loops;
  config.max_hoist_stride = options.max_hoist_stride;
  return config;
}

SgxPassStats Narrow(const CheckPassStats& s) {
  SgxPassStats out;
  out.checks_inserted = s.checks_inserted;
  out.checks_elided_safe = s.checks_elided_safe;
  out.checks_hoisted = s.checks_hoisted;
  out.geps_masked = s.geps_masked;
  return out;
}

}  // namespace

bool IsProvablySafeAccess(const IrFunction& fn, uint32_t block, size_t instr_index) {
  const auto defs = BuildIrDefs(fn);
  return IsSafeIrAccess(defs, fn.blocks[block].instrs[instr_index]);
}

SgxPassStats RunSgxBoundsPass(IrFunction& fn, const SgxPassOptions& options) {
  return Narrow(RunCheckPipeline(fn, SgxBoundsCheckLowering(), ConfigFrom(options)));
}

SgxPassStats RunSchemePass(IrFunction& fn, const SgxPassOptions& options) {
  return Narrow(RunCheckPipeline(fn, TaggedSchemeCheckLowering(0), ConfigFrom(options)));
}

BaselinePassStats RunAsanPass(IrFunction& fn) {
  const CheckPassStats s = RunCheckPipeline(fn, AsanCheckLowering(), CheckPassConfig{});
  BaselinePassStats out;
  out.checks_inserted = s.checks_inserted;
  return out;
}

BaselinePassStats RunMpxPass(IrFunction& fn) {
  const CheckPassStats s = RunCheckPipeline(fn, MpxCheckLowering(), CheckPassConfig{});
  BaselinePassStats out;
  out.checks_inserted = s.checks_inserted;
  out.ptr_loads_instrumented = s.ptr_loads_instrumented;
  out.ptr_stores_instrumented = s.ptr_stores_instrumented;
  return out;
}

}  // namespace sgxb
