// A miniature SSA IR standing in for LLVM in this reproduction.
//
// The paper's artifact is an LLVM 3.8 pass (SS5.1): it rewrites allocations
// to tagged-pointer wrappers, inserts bounds checks before loads/stores,
// masks pointer arithmetic to the low 32 bits, and runs two optimizations -
// safe-access elision and scalar-evolution check hoisting (SS4.4). This IR
// is small enough to interpret over the simulated enclave but rich enough to
// express those transformations as real passes over real code:
//
//   * SSA values (uint64), basic blocks with phis, structured loops;
//   * integer arithmetic, comparisons, branches;
//   * memory: alloca (stack), malloc/free (heap), typed load/store, gep;
//   * instrumentation opcodes that passes insert (checks, masks, bndldx/stx).
//
// Programs are built with IrBuilder, optionally transformed by the passes in
// passes.h, and executed by the Interpreter in interp.h, which charges every
// instruction and memory access into the cycle simulator.

#ifndef SGXBOUNDS_SRC_IR_IR_H_
#define SGXBOUNDS_SRC_IR_IR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sgxb {

enum class IrType : uint8_t { kI8, kI16, kI32, kI64, kPtr };

uint32_t IrTypeSize(IrType type);
const char* IrTypeName(IrType type);

enum class IrOp : uint8_t {
  // Values.
  kConst,  // imm
  kArg,    // imm = argument index
  // Integer arithmetic/logic (args: a, b).
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kURem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  // Comparison (args: a, b; imm = IrCmp).
  kICmp,
  // Control flow.
  kPhi,     // args: one value per predecessor, aligned with Block::preds
  kBr,      // imm = target block
  kCondBr,  // args: cond; imm = true block, imm2 = false block
  kRet,     // args: optional value
  // Memory.
  kAlloca,  // imm = byte size; yields a pointer
  kMalloc,  // args: size; yields a pointer (rewritten by hardening passes)
  kFree,    // args: ptr
  kGep,     // args: base, index; imm = scale, imm2 = byte offset
  kLoad,    // args: ptr; type = loaded type
  kStore,   // args: value, ptr; type = stored type
  // Instrumentation (inserted by passes; see passes.h).
  kSgxCheck,       // args: ptr; imm = access size  (full LB+UB check)
  kSgxCheckUpper,  // args: ptr; imm = access size  (UB-only, LB hoisted)
  kSgxCheckRange,  // args: ptr, extent-in-bytes    (hoisted loop check)
  kMaskPtr,        // args: ptr-after-arith, ptr-before; reapplies the tag
  kAsanCheck,      // args: ptr; imm = access size
  kMpxCheck,       // args: ptr; imm = access size (bounds from side table)
  kMpxLdx,         // args: loaded-ptr, slot-ptr   (attach bounds to value)
  kMpxStx,         // args: stored-ptr, slot-ptr   (write bounds table entry)
  // Generic registry-scheme instrumentation: dispatched to the attached
  // IrSchemeRuntime (Interpreter::AttachScheme). Emitted by RunSchemePass
  // for schemes plugged in via src/policy/<scheme>/ (e.g. l4ptr); the four
  // paper schemes keep their dedicated opcodes above.
  kSchemeCheck,       // args: ptr; imm = access size, imm2 = is-write
  kSchemeCheckRange,  // args: ptr, extent-in-bytes  (hoisted loop check)
  // Misc.
  kCall,  // symbol = runtime function; args passed through (see interp)
};

const char* IrOpName(IrOp op);

enum class IrCmp : uint8_t { kEq, kNe, kULt, kULe, kUGt, kUGe, kSLt, kSLe, kSGt, kSGe };

// An SSA value id. Value 0 is reserved/invalid.
using ValueId = uint32_t;

struct IrInstr {
  ValueId id = 0;  // 0 for instructions that produce no value
  IrOp op;
  IrType type = IrType::kI64;
  std::vector<ValueId> args;
  int64_t imm = 0;
  int64_t imm2 = 0;
  std::string symbol;
};

struct IrBlock {
  std::vector<uint32_t> preds;   // predecessor block ids (phi operand order)
  std::vector<IrInstr> instrs;   // phis first; last instr is the terminator
};

struct IrFunction {
  std::string name;
  uint32_t num_args = 0;
  uint32_t num_values = 1;  // next SSA id (0 reserved)
  std::vector<IrBlock> blocks;

  // Printable listing for debugging and golden tests.
  std::string ToString() const;

  // Structural validation: terminator presence, phi arity, operand
  // dominance is NOT checked (builder discipline), returns problem text or
  // empty string.
  std::string Verify() const;

  // Total instruction count (for instrumentation-blowup assertions).
  size_t InstrCount() const;
  size_t CountOp(IrOp op) const;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_IR_H_
