#include "src/ir/opt/pipeline.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/check.h"

namespace sgxb {

CheckSchemeLowering SgxBoundsCheckLowering() {
  CheckSchemeLowering s;
  s.check_op = IrOp::kSgxCheck;
  s.range_check_op = IrOp::kSgxCheckRange;
  s.alloc_symbol = "sgx";
  s.mask_geps = true;
  s.set_store_imm2 = true;
  s.supports_elide_safe = true;
  s.supports_hoist = true;
  s.supports_elide_redundant = true;
  s.supports_pattern = true;
  // LBs/UBs are exact (no padding floor): in-field elision stays illegal.
  s.min_object_bytes = 0;
  return s;
}

CheckSchemeLowering TaggedSchemeCheckLowering(uint32_t min_object_bytes) {
  CheckSchemeLowering s;
  s.check_op = IrOp::kSchemeCheck;
  s.range_check_op = IrOp::kSchemeCheckRange;
  s.alloc_symbol = "scheme";
  s.mask_geps = true;
  s.set_store_imm2 = true;
  s.supports_elide_safe = true;
  s.supports_hoist = true;
  s.supports_elide_redundant = true;
  s.supports_pattern = true;
  s.min_object_bytes = min_object_bytes;
  return s;
}

CheckSchemeLowering AsanCheckLowering() {
  CheckSchemeLowering s;
  s.check_op = IrOp::kAsanCheck;
  s.has_range_check = false;
  s.alloc_symbol = "asan";
  s.set_store_imm2 = true;
  // The historical ASan lowering checks every access unconditionally; only
  // the (default-off) redundant-check elimination is legal on top of it -
  // a dominating shadow check on the same pointer proves the same bytes
  // addressable.
  s.supports_elide_redundant = true;
  return s;
}

CheckSchemeLowering MpxCheckLowering() {
  CheckSchemeLowering s;
  s.check_op = IrOp::kMpxCheck;
  s.has_range_check = false;
  // MPX instruments accesses only: allocations are not interposed, and the
  // is-store bit is not part of bndcl/bndcu.
  s.alloc_symbol = nullptr;
  s.set_store_imm2 = false;
  s.instrument_ptr_mem = true;
  s.supports_elide_redundant = true;
  return s;
}

namespace {

bool ConstValueOf(const IrDefMap& defs, ValueId v, int64_t* out) {
  auto it = defs.find(v);
  if (it == defs.end() || it->second.op != IrOp::kConst) {
    return false;
  }
  *out = it->second.imm;
  return true;
}

}  // namespace

CheckPassStats RunCheckPipeline(IrFunction& fn, const CheckSchemeLowering& scheme,
                                const CheckPassConfig& config) {
  CheckPassStats stats;
  const auto defs = BuildIrDefs(fn);

  // A pass runs only when the run asked for it AND the scheme's encoding
  // makes it legal.
  const bool elide_safe = config.elide_safe && scheme.supports_elide_safe;
  const bool elide_infield = config.elide_infield && scheme.min_object_bytes > 0;
  const bool hoist = config.hoist_loops && scheme.supports_hoist && scheme.has_range_check;
  const bool pattern =
      config.pattern_loops && scheme.supports_pattern && scheme.has_range_check;

  const std::vector<LoopInfo> loops =
      hoist || pattern ? FindCountedLoops(fn) : std::vector<LoopInfo>{};
  const std::vector<LoopInfo> ne_loops =
      pattern ? FindMonotonicNeLoops(fn) : std::vector<LoopInfo>{};

  // Map: block -> loop whose body contains it (canonical loops don't share
  // body blocks in builder output).
  std::unordered_map<uint32_t, const LoopInfo*> loop_of_block;
  for (const auto& loop : loops) {
    for (uint32_t b : loop.body_blocks) {
      loop_of_block[b] = &loop;
    }
  }
  std::unordered_map<uint32_t, const LoopInfo*> ne_loop_of_block;
  for (const auto& loop : ne_loops) {
    for (uint32_t b : loop.body_blocks) {
      ne_loop_of_block[b] = &loop;
    }
  }

  // Hoisted range checks to add to preheaders: (preheader, base, bound,
  // scale, offset+size).
  struct RangeCheck {
    uint32_t preheader;
    ValueId base;
    ValueId bound;
    int64_t scale;
    int64_t tail;
  };
  std::vector<RangeCheck> range_checks;
  // Deduplicate hoisted checks per (preheader, base): one range check covers
  // all accesses to the same array in the loop (keep the max tail).
  auto add_range_check = [&](const RangeCheck& rc) {
    for (auto& existing : range_checks) {
      if (existing.preheader == rc.preheader && existing.base == rc.base &&
          existing.bound == rc.bound && existing.scale == rc.scale) {
        existing.tail = std::max(existing.tail, rc.tail);
        return;
      }
    }
    range_checks.push_back(rc);
  };

  // Matches the access pointer against gep(base, iv) for a loop containing
  // `block`; fills the un-tailed range check on success.
  auto match_iv_gep = [&](const LoopInfo& loop, const IrInstr& access, RangeCheck* rc,
                          const IrInstr** gep_out) {
    const ValueId ptr = access.op == IrOp::kLoad ? access.args[0] : access.args[1];
    auto def_it = defs.find(ptr);
    if (def_it == defs.end() || def_it->second.op != IrOp::kGep) {
      return false;
    }
    const IrInstr& gep = def_it->second;
    if (gep.args[1] != loop.iv) {
      return false;  // index is not the affine IV
    }
    // Base must be defined before the loop header's phi (loop-invariant).
    if (gep.args[0] >= loop.iv) {
      return false;
    }
    rc->preheader = loop.preheader;
    rc->base = gep.args[0];
    rc->bound = loop.bound;
    rc->scale = gep.imm;
    *gep_out = &def_it->second;
    return true;
  };

  // Decide, per access, whether its check can be hoisted (SS4.4 SCEV).
  auto hoistable = [&](uint32_t block, const IrInstr& access, RangeCheck* rc) {
    if (!hoist) {
      return false;
    }
    auto it = loop_of_block.find(block);
    if (it == loop_of_block.end()) {
      return false;
    }
    const LoopInfo& loop = *it->second;
    const IrInstr* gep = nullptr;
    if (!match_iv_gep(loop, access, rc, &gep)) {
      return false;
    }
    const int64_t stride = gep->imm * loop.step;
    if (stride <= 0 || stride > static_cast<int64_t>(config.max_hoist_stride)) {
      return false;  // SS4.4 restriction
    }
    // The last iteration uses iv = bound - step, so the furthest byte touched
    // is (bound - step)*scale + offset + size = bound*scale + tail with
    // tail = offset + size - step*scale.
    rc->tail = gep->imm2 + IrTypeSize(access.type) - loop.step * gep->imm;
    return true;
  };

  // Pattern-based loop optimization (ShadowBound PatternOpt): one range
  // check per array even when the SCEV window rejects the loop. Two legal
  // shapes, both requiring a provable final IV value so the hoisted extent
  // is exact (no false positives, no missed detections):
  //   (a) kSLt counted loops whose stride exceeds the SS4.4 window, with
  //       constant start/bound: max_iv = start + floor((bound-1-start)/step)*step.
  //   (b) monotonic kNe loops (FindMonotonicNeLoops proved divisibility):
  //       max_iv = bound - step, the same extent formula as SCEV hoisting.
  auto pattern_hoistable = [&](uint32_t block, const IrInstr& access, RangeCheck* rc) {
    if (!pattern) {
      return false;
    }
    if (auto it = loop_of_block.find(block); it != loop_of_block.end()) {
      const LoopInfo& loop = *it->second;
      const IrInstr* gep = nullptr;
      int64_t start = 0;
      int64_t bound = 0;
      if (match_iv_gep(loop, access, rc, &gep) && gep->imm * loop.step > 0 &&
          ConstValueOf(defs, loop.start, &start) &&
          ConstValueOf(defs, loop.bound, &bound) && bound > start) {
        const int64_t max_iv = start + ((bound - 1 - start) / loop.step) * loop.step;
        rc->tail = (max_iv - bound) * gep->imm + gep->imm2 + IrTypeSize(access.type);
        return true;
      }
    }
    if (auto it = ne_loop_of_block.find(block); it != ne_loop_of_block.end()) {
      const LoopInfo& loop = *it->second;
      const IrInstr* gep = nullptr;
      if (match_iv_gep(loop, access, rc, &gep) && gep->imm * loop.step > 0) {
        rc->tail = gep->imm2 + IrTypeSize(access.type) - loop.step * gep->imm;
        return true;
      }
    }
    return false;
  };

  // Rewrite each block: tag allocations, mask geps, insert checks.
  for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
    std::vector<IrInstr> out;
    out.reserve(fn.blocks[b].instrs.size() * 2);
    for (auto& instr : fn.blocks[b].instrs) {
      switch (instr.op) {
        case IrOp::kMalloc:
        case IrOp::kAlloca:
        case IrOp::kFree:
          if (scheme.alloc_symbol != nullptr) {
            instr.symbol = scheme.alloc_symbol;
          }
          out.push_back(instr);
          break;
        case IrOp::kGep: {
          if (!scheme.mask_geps) {
            out.push_back(instr);
            break;
          }
          // Rename the gep result and re-tag via kMaskPtr under the original
          // id, so existing uses see the masked pointer.
          IrInstr gep = instr;
          const ValueId original = gep.id;
          gep.id = fn.num_values++;
          out.push_back(gep);
          IrInstr mask;
          mask.id = original;
          mask.op = IrOp::kMaskPtr;
          mask.type = IrType::kPtr;
          mask.args = {gep.id, gep.args[0]};
          out.push_back(mask);
          ++stats.geps_masked;
          break;
        }
        case IrOp::kLoad:
        case IrOp::kStore: {
          const ValueId ptr = instr.op == IrOp::kLoad ? instr.args[0] : instr.args[1];
          RangeCheck rc;
          if (elide_safe && IsSafeIrAccess(defs, instr)) {
            ++stats.checks_elided_safe;
          } else if (elide_infield &&
                     IsInFieldIrAccess(defs, instr, scheme.min_object_bytes)) {
            ++stats.checks_elided_infield;
          } else if (hoistable(b, instr, &rc)) {
            add_range_check(rc);
            ++stats.checks_hoisted;
          } else if (pattern_hoistable(b, instr, &rc)) {
            add_range_check(rc);
            ++stats.checks_pattern_hoisted;
          } else {
            IrInstr check;
            check.op = scheme.check_op;
            check.args = {ptr};
            check.imm = IrTypeSize(instr.type);
            check.imm2 =
                scheme.set_store_imm2 && instr.op == IrOp::kStore ? 1 : 0;
            out.push_back(check);
            ++stats.checks_inserted;
          }
          out.push_back(instr);
          if (scheme.instrument_ptr_mem && instr.type == IrType::kPtr) {
            if (instr.op == IrOp::kLoad) {
              // Loaded a pointer: fetch its bounds from the tables.
              IrInstr ldx;
              ldx.op = IrOp::kMpxLdx;
              ldx.args = {instr.id, instr.args[0]};
              out.push_back(ldx);
              ++stats.ptr_loads_instrumented;
            } else {
              IrInstr stx;
              stx.op = IrOp::kMpxStx;
              stx.args = {instr.args[0], instr.args[1]};
              out.push_back(stx);
              ++stats.ptr_stores_instrumented;
            }
          }
          break;
        }
        default:
          out.push_back(instr);
          break;
      }
    }
    fn.blocks[b].instrs = std::move(out);
  }

  // Materialize hoisted range checks in preheaders, before the terminator:
  //   extent = bound * scale + tail ; check.range base, extent
  for (const auto& rc : range_checks) {
    auto& instrs = fn.blocks[rc.preheader].instrs;
    CHECK(!instrs.empty());
    std::vector<IrInstr> seq;
    IrInstr c1;
    c1.id = fn.num_values++;
    c1.op = IrOp::kConst;
    c1.imm = rc.scale;
    seq.push_back(c1);
    IrInstr mul;
    mul.id = fn.num_values++;
    mul.op = IrOp::kMul;
    mul.args = {rc.bound, c1.id};
    seq.push_back(mul);
    IrInstr c2;
    c2.id = fn.num_values++;
    c2.op = IrOp::kConst;
    c2.imm = rc.tail;
    seq.push_back(c2);
    IrInstr add;
    add.id = fn.num_values++;
    add.op = IrOp::kAdd;
    add.args = {mul.id, c2.id};
    seq.push_back(add);
    IrInstr check;
    check.op = scheme.range_check_op;
    check.args = {rc.base, add.id};
    seq.push_back(check);
    instrs.insert(instrs.end() - 1, seq.begin(), seq.end());
  }

  // Post-pass: redundant-check elimination via dominating checks.
  if (config.elide_redundant && scheme.supports_elide_redundant) {
    stats.checks_elided_redundant = EliminateRedundantChecks(fn, scheme.check_op);
    stats.checks_inserted -= stats.checks_elided_redundant;
  }

  return stats;
}

uint32_t EliminateRedundantChecks(IrFunction& fn, IrOp check_op) {
  const DominatorTree dom(fn);
  uint32_t removed = 0;
  // Final available-check map per block: SSA pointer -> widest size checked.
  // A block inherits its idom's final map: every instruction of the idom
  // executes before any instruction of a dominated block (the branch is the
  // idom's last instruction), and the relation is transitive up the chain.
  std::vector<std::unordered_map<ValueId, int64_t>> avail(fn.blocks.size());
  for (uint32_t b : dom.rpo()) {
    auto& map = avail[b];
    if (dom.idom(b) != DominatorTree::kNone) {
      map = avail[dom.idom(b)];  // idom precedes b in RPO: already final
    }
    auto& instrs = fn.blocks[b].instrs;
    std::vector<IrInstr> out;
    out.reserve(instrs.size());
    for (auto& instr : instrs) {
      if (instr.op == check_op) {
        const ValueId ptr = instr.args[0];
        auto it = map.find(ptr);
        if (it != map.end() && it->second >= instr.imm) {
          ++removed;  // dominated by an equal-or-wider check: delete
          continue;
        }
        int64_t& widest = map[ptr];
        widest = std::max(widest, instr.imm);
      }
      out.push_back(instr);
    }
    instrs = std::move(out);
  }
  return removed;
}

}  // namespace sgxb
