#include "src/ir/opt/analysis.h"

#include <algorithm>
#include <unordered_set>

namespace sgxb {

IrDefMap BuildIrDefs(const IrFunction& fn) {
  IrDefMap defs;
  for (const auto& block : fn.blocks) {
    for (const auto& instr : block.instrs) {
      if (instr.id != 0) {
        defs[instr.id] = instr;
      }
    }
  }
  return defs;
}

const IrInstr* ResolveIrPtrDef(const IrDefMap& defs, ValueId v) {
  auto it = defs.find(v);
  if (it == defs.end()) {
    return nullptr;
  }
  if (it->second.op == IrOp::kMaskPtr) {
    // arg1 is the pre-arithmetic pointer; arg0 the raw gep. Use the raw gep.
    return ResolveIrPtrDef(defs, it->second.args[0]);
  }
  return &it->second;
}

uint32_t StaticIrObjectSize(const IrDefMap& defs, ValueId v) {
  auto it = defs.find(v);
  if (it == defs.end()) {
    return 0;
  }
  const IrInstr& def = it->second;
  if (def.op == IrOp::kAlloca) {
    return static_cast<uint32_t>(def.imm);
  }
  if (def.op == IrOp::kMalloc) {
    auto size_def = defs.find(def.args[0]);
    if (size_def != defs.end() && size_def->second.op == IrOp::kConst) {
      return static_cast<uint32_t>(size_def->second.imm);
    }
  }
  return 0;
}

bool IsSafeIrAccess(const IrDefMap& defs, const IrInstr& access) {
  const ValueId ptr = access.op == IrOp::kLoad ? access.args[0] : access.args[1];
  const uint32_t size = IrTypeSize(access.type);
  const IrInstr* def = ResolveIrPtrDef(defs, ptr);
  if (def == nullptr) {
    return false;
  }
  if (def->op == IrOp::kAlloca || def->op == IrOp::kMalloc) {
    // Direct access at offset 0.
    return StaticIrObjectSize(defs, def->id) >= size;
  }
  if (def->op != IrOp::kGep) {
    return false;
  }
  const uint32_t obj_size = StaticIrObjectSize(defs, def->args[0]);
  if (obj_size == 0) {
    return false;
  }
  auto index_def = defs.find(def->args[1]);
  if (index_def == defs.end() || index_def->second.op != IrOp::kConst) {
    return false;
  }
  const int64_t index = index_def->second.imm;
  if (index < 0) {
    return false;
  }
  const int64_t last = index * def->imm + def->imm2 + size;
  return last <= static_cast<int64_t>(obj_size);
}

bool IsInFieldIrAccess(const IrDefMap& defs, const IrInstr& access,
                       uint32_t min_object_bytes) {
  if (min_object_bytes == 0) {
    return false;  // scheme has exact bounds, no footprint floor to lean on
  }
  const ValueId ptr = access.op == IrOp::kLoad ? access.args[0] : access.args[1];
  const uint32_t size = IrTypeSize(access.type);
  const IrInstr* def = ResolveIrPtrDef(defs, ptr);
  if (def == nullptr) {
    return false;
  }
  int64_t offset = 0;
  if (def->op == IrOp::kGep) {
    // The gep base must be the allocation itself (no chained geps: a chain
    // would compound offsets we can't bound here).
    const IrInstr* base = ResolveIrPtrDef(defs, def->args[0]);
    if (base == nullptr ||
        (base->op != IrOp::kAlloca && base->op != IrOp::kMalloc)) {
      return false;
    }
    auto index_def = defs.find(def->args[1]);
    if (index_def == defs.end() || index_def->second.op != IrOp::kConst) {
      return false;
    }
    const int64_t index = index_def->second.imm;
    if (index < 0) {
      return false;
    }
    offset = index * def->imm + def->imm2;
  } else if (def->op != IrOp::kAlloca && def->op != IrOp::kMalloc) {
    return false;
  }
  if (offset < 0) {
    return false;
  }
  return offset + size <= static_cast<int64_t>(min_object_bytes);
}

namespace {

// Shared loop-shape matcher: canonical builder loops differ only in the
// comparison opcode of the exit condition. Legality of acting on the loop is
// the caller's business.
std::vector<LoopInfo> FindLoopsWithCmp(const IrFunction& fn, IrCmp cmp) {
  std::vector<LoopInfo> loops;
  const auto defs = BuildIrDefs(fn);
  for (uint32_t h = 0; h < fn.blocks.size(); ++h) {
    const IrBlock& header = fn.blocks[h];
    if (header.preds.size() != 2 || header.instrs.size() < 2) {
      continue;
    }
    const IrInstr& phi = header.instrs.front();
    const IrInstr& term = header.instrs.back();
    if (phi.op != IrOp::kPhi || term.op != IrOp::kCondBr) {
      continue;
    }
    // condbr cond, body, exit  where cond = icmp <cmp> phi, bound
    auto cond_def = defs.find(term.args[0]);
    if (cond_def == defs.end() || cond_def->second.op != IrOp::kICmp ||
        static_cast<IrCmp>(cond_def->second.imm) != cmp ||
        cond_def->second.args[0] != phi.id) {
      continue;
    }
    const ValueId bound = cond_def->second.args[1];
    // One incoming is the start (preheader), the other is phi + const step.
    LoopInfo loop;
    loop.header = h;
    loop.iv = phi.id;
    loop.bound = bound;
    bool found_step = false;
    for (size_t p = 0; p < header.preds.size(); ++p) {
      auto inc_def = defs.find(phi.args[p]);
      const bool is_step = inc_def != defs.end() && inc_def->second.op == IrOp::kAdd &&
                           inc_def->second.args[0] == phi.id;
      if (is_step) {
        auto step_def = defs.find(inc_def->second.args[1]);
        if (step_def == defs.end() || step_def->second.op != IrOp::kConst) {
          continue;
        }
        loop.step = step_def->second.imm;
        found_step = true;
      } else {
        loop.preheader = header.preds[p];
        loop.start = phi.args[p];
      }
    }
    if (!found_step || loop.step <= 0) {
      continue;
    }
    // Body blocks: those reachable from the true-target without re-entering
    // header or exit.
    const uint32_t body = static_cast<uint32_t>(term.imm);
    const uint32_t exit = static_cast<uint32_t>(term.imm2);
    std::unordered_set<uint32_t> body_set;
    std::vector<uint32_t> worklist{body};
    while (!worklist.empty()) {
      const uint32_t b = worklist.back();
      worklist.pop_back();
      if (b == h || b == exit || body_set.count(b) != 0) {
        continue;
      }
      body_set.insert(b);
      const IrInstr& t = fn.blocks[b].instrs.back();
      if (t.op == IrOp::kBr) {
        worklist.push_back(static_cast<uint32_t>(t.imm));
      } else if (t.op == IrOp::kCondBr) {
        worklist.push_back(static_cast<uint32_t>(t.imm));
        worklist.push_back(static_cast<uint32_t>(t.imm2));
      }
    }
    loop.body_blocks.assign(body_set.begin(), body_set.end());
    loops.push_back(std::move(loop));
  }
  return loops;
}

}  // namespace

std::vector<LoopInfo> FindCountedLoops(const IrFunction& fn) {
  return FindLoopsWithCmp(fn, IrCmp::kSLt);
}

std::vector<LoopInfo> FindMonotonicNeLoops(const IrFunction& fn) {
  std::vector<LoopInfo> loops = FindLoopsWithCmp(fn, IrCmp::kNe);
  const auto defs = BuildIrDefs(fn);
  // Keep only loops whose final IV value is provable: with an `ne` exit the
  // IV must land on `bound` exactly or the loop never terminates in-range.
  auto provable = [&](const LoopInfo& loop) {
    auto start_def = defs.find(loop.start);
    auto bound_def = defs.find(loop.bound);
    if (start_def == defs.end() || start_def->second.op != IrOp::kConst ||
        bound_def == defs.end() || bound_def->second.op != IrOp::kConst) {
      return false;
    }
    const int64_t start = start_def->second.imm;
    const int64_t bound = bound_def->second.imm;
    return bound > start && (bound - start) % loop.step == 0;
  };
  loops.erase(std::remove_if(loops.begin(), loops.end(),
                             [&](const LoopInfo& l) { return !provable(l); }),
              loops.end());
  return loops;
}

std::vector<uint32_t> IrBlockSuccessors(const IrBlock& block) {
  if (block.instrs.empty()) {
    return {};
  }
  const IrInstr& term = block.instrs.back();
  if (term.op == IrOp::kBr) {
    return {static_cast<uint32_t>(term.imm)};
  }
  if (term.op == IrOp::kCondBr) {
    return {static_cast<uint32_t>(term.imm), static_cast<uint32_t>(term.imm2)};
  }
  return {};
}

DominatorTree::DominatorTree(const IrFunction& fn) {
  const uint32_t n = static_cast<uint32_t>(fn.blocks.size());
  idom_.assign(n, kNone);
  rpo_index_.assign(n, kNone);
  if (n == 0) {
    return;
  }

  // Post-order DFS from the entry block, iterative to survive deep CFGs.
  std::vector<uint32_t> post;
  post.reserve(n);
  std::vector<uint8_t> state(n, 0);  // 0=unvisited 1=on-stack 2=done
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const std::vector<uint32_t> succs = IrBlockSuccessors(fn.blocks[b]);
    if (next < succs.size()) {
      const uint32_t s = succs[next++];
      if (s < n && state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  for (uint32_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[rpo_[i]] = i;
  }

  // Predecessor lists restricted to reachable blocks.
  std::vector<std::vector<uint32_t>> preds(n);
  for (uint32_t b : rpo_) {
    for (uint32_t s : IrBlockSuccessors(fn.blocks[b])) {
      if (s < n && rpo_index_[s] != kNone) {
        preds[s].push_back(b);
      }
    }
  }

  // Cooper-Harvey-Kennedy: iterate to fixpoint over RPO.
  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index_[a] > rpo_index_[b]) {
        a = idom_[a];
      }
      while (rpo_index_[b] > rpo_index_[a]) {
        b = idom_[b];
      }
    }
    return a;
  };
  idom_[0] = 0;  // sentinel: entry's idom is itself during iteration
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t i = 1; i < rpo_.size(); ++i) {
      const uint32_t b = rpo_[i];
      uint32_t new_idom = kNone;
      for (uint32_t p : preds[b]) {
        if (idom_[p] == kNone) {
          continue;  // predecessor not processed yet
        }
        new_idom = new_idom == kNone ? p : intersect(p, new_idom);
      }
      if (new_idom != kNone && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
  idom_[0] = kNone;  // entry has no immediate dominator
}

bool DominatorTree::Dominates(uint32_t a, uint32_t b) const {
  if (a == b) {
    return true;
  }
  if (!reachable(a) || !reachable(b)) {
    return false;
  }
  // Walk b's idom chain toward the entry; idoms always have a smaller RPO
  // index, so the walk terminates.
  uint32_t cur = b;
  while (idom_[cur] != kNone) {
    cur = idom_[cur];
    if (cur == a) {
      return true;
    }
  }
  return false;
}

}  // namespace sgxb
