// Reusable IR analyses shared by every check-optimization pass (src/ir/opt):
//
//   BuildIrDefs / ResolveIrPtrDef - SSA definition map, looking through the
//     kMaskPtr re-tagging that tagged-pointer schemes insert after geps.
//   StaticIrObjectSize / IsSafeIrAccess - the SizeOffsetVisitor-style
//     object-size analysis behind safe-access elision (paper SS4.4).
//   IsInFieldIrAccess - field-extent analysis: a constant offset from an
//     allocation base that stays inside the scheme's minimum object
//     footprint (granule/padding floor) needs no re-check even when the
//     allocation size is only known at run time.
//   FindCountedLoops - canonical `icmp slt` counted loops (affine IV), the
//     input to SCEV-style hoisting.
//   FindMonotonicNeLoops - `icmp ne` monotonic loops with a provable final
//     IV value; their trip count is not affine-closed under the kSLt SCEV
//     model, but pattern-based loop optimization can still hoist one range
//     check per array (ShadowBound's PatternOpt).
//   DominatorTree - iterative idom computation over reverse post-order,
//     the backbone of redundant-check elimination.
//
// All analyses are pure: they never mutate the function.

#ifndef SGXBOUNDS_SRC_IR_OPT_ANALYSIS_H_
#define SGXBOUNDS_SRC_IR_OPT_ANALYSIS_H_

#include <unordered_map>
#include <vector>

#include "src/ir/ir.h"

namespace sgxb {

using IrDefMap = std::unordered_map<ValueId, IrInstr>;

// Definition map: value id -> copy of the defining instruction.
IrDefMap BuildIrDefs(const IrFunction& fn);

// Resolves through kMaskPtr to the original pointer definition.
const IrInstr* ResolveIrPtrDef(const IrDefMap& defs, ValueId v);

// Statically known object size for a pointer-producing value, or 0.
uint32_t StaticIrObjectSize(const IrDefMap& defs, ValueId v);

// True if the load/store `access` is provably in bounds: its address is an
// allocation (or gep(object, const index)) with const offset+size within the
// object's statically known size.
bool IsSafeIrAccess(const IrDefMap& defs, const IrInstr& access);

// True if the load/store `access` touches a provably constant byte range
// [offset, offset+size) from an allocation base (the allocation size need
// not be static), with offset+size <= min_object_bytes. For schemes whose
// allocator rounds every object footprint up to min_object_bytes, such an
// access is exactly as in-bounds as the first access through the same base,
// so the per-field re-check is redundant.
bool IsInFieldIrAccess(const IrDefMap& defs, const IrInstr& access,
                       uint32_t min_object_bytes);

// A natural counted loop in canonical builder form.
struct LoopInfo {
  uint32_t preheader;
  uint32_t header;
  ValueId iv;        // the induction phi
  ValueId start;     // incoming from preheader
  ValueId bound;     // loop-invariant bound (icmp slt iv, bound)
  int64_t step;      // constant increment
  std::vector<uint32_t> body_blocks;
};

std::vector<LoopInfo> FindCountedLoops(const IrFunction& fn);

// Monotonic `icmp ne iv, bound` loops where the final IV value is provable:
// constant start and bound, bound > start, and (bound - start) divisible by
// the (positive, constant) step, so the IV hits `bound` exactly and the last
// executed iteration uses iv = bound - step. Loops failing any of those
// conditions are skipped (a non-divisible `ne` bound would wrap around).
std::vector<LoopInfo> FindMonotonicNeLoops(const IrFunction& fn);

// Immediate-dominator tree over a function's blocks (entry = block 0),
// computed with the Cooper-Harvey-Kennedy iterative algorithm over reverse
// post-order. Unreachable blocks dominate nothing and are dominated by
// nothing (except themselves).
class DominatorTree {
 public:
  explicit DominatorTree(const IrFunction& fn);

  static constexpr uint32_t kNone = 0xffffffffu;

  // Immediate dominator of `b`, kNone for the entry and unreachable blocks.
  uint32_t idom(uint32_t b) const { return idom_[b]; }
  bool reachable(uint32_t b) const { return rpo_index_[b] != kNone; }
  // True if every path from entry to `b` passes through `a` (reflexive).
  bool Dominates(uint32_t a, uint32_t b) const;
  // Blocks in reverse post-order; every block's idom precedes it here.
  const std::vector<uint32_t>& rpo() const { return rpo_; }

 private:
  std::vector<uint32_t> idom_;
  std::vector<uint32_t> rpo_;
  std::vector<uint32_t> rpo_index_;
};

// Successor block ids of a block's terminator (kBr/kCondBr; empty for kRet).
std::vector<uint32_t> IrBlockSuccessors(const IrBlock& block);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_OPT_ANALYSIS_H_
