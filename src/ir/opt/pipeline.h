// The scheme-generic check-optimization pipeline (paper SS4.4 + SS5.1,
// extended with ShadowBound-style whole-program optimizations).
//
// Every registry scheme's SchemeIrLowering runs RunCheckPipeline with two
// inputs:
//
//   CheckSchemeLowering - WHAT the scheme's instrumentation looks like
//     (check opcodes, allocation symbol, gep masking, MPX's pointer-bounds
//     table traffic) and WHICH passes are legal for its bounds encoding
//     (the supports_* mask plus the in-field footprint floor).
//   CheckPassConfig - WHICH passes this run asked for (from PolicyOptions).
//
// A pass runs only when both the run asked for it and the scheme supports
// it, so a scheme that ignores an optimization today keeps bit-identical
// instrumentation no matter what the run requests. Pass order per access:
//
//   1. safe-access elision     (static object size proves in-bounds)
//   2. in-field elision        (const offset within the footprint floor)
//   3. SCEV loop hoisting      (affine IV, stride <= max_hoist_stride)
//   4. pattern loop hoisting   (over-stride kSLt / monotonic kNe loops)
//   5. insert the check
//   6. redundant-check elimination (post-pass: a check dominated by an
//      equal-or-wider check on the same SSA pointer is deleted)
//
// With every optional pass disabled the pipeline reproduces the historical
// RunSgxBoundsPass/RunAsanPass/RunMpxPass output byte for byte, including
// value-numbering order (guarded by trace_golden_test and the fig07/fig10
// stdout goldens in CI).

#ifndef SGXBOUNDS_SRC_IR_OPT_PIPELINE_H_
#define SGXBOUNDS_SRC_IR_OPT_PIPELINE_H_

#include "src/ir/opt/analysis.h"

namespace sgxb {

// Per-run pass toggles (mirrors the opt_* fields of PolicyOptions).
struct CheckPassConfig {
  bool elide_safe = true;
  bool hoist_loops = true;
  bool elide_redundant = false;
  bool pattern_loops = false;
  bool elide_infield = false;
  // SS4.4: hoisting applies only to loops with increments up to 1024 bytes.
  // Pattern loop hoisting is exempt (that is its point).
  uint32_t max_hoist_stride = 1024;
};

// Per-scheme lowering description + pass legality mask.
struct CheckSchemeLowering {
  IrOp check_op = IrOp::kSchemeCheck;
  IrOp range_check_op = IrOp::kSchemeCheckRange;
  bool has_range_check = true;
  // Symbol stamped on kMalloc/kAlloca/kFree so the interpreter routes the
  // allocation to this scheme's runtime; nullptr leaves allocations alone
  // (MPX instruments accesses only).
  const char* alloc_symbol = nullptr;
  // Tagged-pointer schemes re-tag after every gep (kMaskPtr).
  bool mask_geps = false;
  // Whether check.imm2 carries the is-store bit.
  bool set_store_imm2 = false;
  // MPX: bndldx after pointer loads, bndstx after pointer stores.
  bool instrument_ptr_mem = false;
  // Pass legality. A scheme only honors a pass when its encoding makes the
  // transform detection-neutral; see DESIGN.md "the optimization pipeline".
  bool supports_elide_safe = false;
  bool supports_hoist = false;
  bool supports_elide_redundant = false;
  bool supports_pattern = false;
  // In-field elision floor: the scheme's minimum object footprint in bytes
  // (allocator granule/padding). 0 = exact bounds, in-field elision illegal.
  uint32_t min_object_bytes = 0;
};

// Canned lowerings for the built-in schemes.
CheckSchemeLowering SgxBoundsCheckLowering();
CheckSchemeLowering TaggedSchemeCheckLowering(uint32_t min_object_bytes);
CheckSchemeLowering AsanCheckLowering();
CheckSchemeLowering MpxCheckLowering();

struct CheckPassStats {
  uint32_t checks_inserted = 0;
  uint32_t checks_elided_safe = 0;
  uint32_t checks_elided_redundant = 0;
  uint32_t checks_elided_infield = 0;
  uint32_t checks_hoisted = 0;
  uint32_t checks_pattern_hoisted = 0;
  uint32_t geps_masked = 0;
  uint32_t ptr_loads_instrumented = 0;   // MPX bndldx
  uint32_t ptr_stores_instrumented = 0;  // MPX bndstx

  void Accumulate(const CheckPassStats& o) {
    checks_inserted += o.checks_inserted;
    checks_elided_safe += o.checks_elided_safe;
    checks_elided_redundant += o.checks_elided_redundant;
    checks_elided_infield += o.checks_elided_infield;
    checks_hoisted += o.checks_hoisted;
    checks_pattern_hoisted += o.checks_pattern_hoisted;
    geps_masked += o.geps_masked;
    ptr_loads_instrumented += o.ptr_loads_instrumented;
    ptr_stores_instrumented += o.ptr_stores_instrumented;
  }
  bool Any() const {
    return checks_inserted != 0 || checks_elided_safe != 0 ||
           checks_elided_redundant != 0 || checks_elided_infield != 0 ||
           checks_hoisted != 0 || checks_pattern_hoisted != 0 ||
           geps_masked != 0 || ptr_loads_instrumented != 0 ||
           ptr_stores_instrumented != 0;
  }
};

// Instruments `fn` for `scheme`, running the passes enabled by both `config`
// and the scheme's legality mask.
CheckPassStats RunCheckPipeline(IrFunction& fn, const CheckSchemeLowering& scheme,
                                const CheckPassConfig& config);

// Redundant-check elimination: deletes every `check_op` instruction that is
// dominated by a check of the same opcode on the same SSA pointer with an
// equal-or-wider access size. Returns the number of checks deleted.
// Exposed for directed tests; RunCheckPipeline calls it as a post-pass.
uint32_t EliminateRedundantChecks(IrFunction& fn, IrOp check_op);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_OPT_PIPELINE_H_
