// Runtime hooks a registry-plugged scheme exposes to the IR pipeline.
//
// The four paper schemes have dedicated opcodes and runtime pointers in the
// interpreter (kSgxCheck/kAsanCheck/kMpxCheck); a plugged-in scheme instead
// lowers through the generic kSchemeCheck/kSchemeCheckRange opcodes and the
// "scheme" allocation symbol (RunSchemePass, passes.h), which the reference
// interpreter and the threaded engine both dispatch to this interface
// (Interpreter::AttachScheme). Implementations charge their own simulated
// costs and throw SimTrap on violations, exactly like the built-in runtimes.

#ifndef SGXBOUNDS_SRC_IR_SCHEME_RT_H_
#define SGXBOUNDS_SRC_IR_SCHEME_RT_H_

#include <cstdint>

#include "src/enclave/enclave.h"
#include "src/runtime/stack.h"
#include "src/sgxbounds/metadata.h"

namespace sgxb {

class IrSchemeRuntime {
 public:
  virtual ~IrSchemeRuntime() = default;

  // kAlloca with symbol "scheme": stack allocation, returns the scheme's
  // pointer representation (64-bit SSA value).
  virtual uint64_t IrAlloca(Cpu& cpu, StackAllocator& stack, uint32_t bytes) = 0;

  // kMalloc / kFree with symbol "scheme".
  virtual uint64_t IrMalloc(Cpu& cpu, uint32_t bytes) = 0;
  virtual void IrFree(Cpu& cpu, uint64_t ptr) = 0;

  // kSchemeCheck: access check before a load/store of `bytes` at `ptr`.
  virtual void IrCheck(Cpu& cpu, uint64_t ptr, uint32_t bytes, AccessType type) = 0;

  // kSchemeCheckRange: hoisted loop check over [ptr, ptr + extent).
  virtual void IrCheckRange(Cpu& cpu, uint64_t ptr, uint64_t extent) = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_SCHEME_RT_H_
