// Scalar evaluation helpers shared by the two IR execution engines.
//
// The reference interpreter (interp.cc) and the decoded micro-op engine
// (exec/engine.cc) must produce bit-identical results; keeping truncation
// and comparison semantics in one header is what prevents them drifting.

#ifndef SGXBOUNDS_SRC_IR_EVAL_H_
#define SGXBOUNDS_SRC_IR_EVAL_H_

#include <cstdint>

#include "src/ir/ir.h"

namespace sgxb {

inline uint64_t TruncateToType(IrType type, uint64_t value) {
  switch (type) {
    case IrType::kI8:
      return value & 0xff;
    case IrType::kI16:
      return value & 0xffff;
    case IrType::kI32:
      return value & 0xffffffff;
    case IrType::kI64:
    case IrType::kPtr:
      return value;
  }
  return value;
}

inline bool EvalCmp(IrCmp pred, uint64_t a, uint64_t b) {
  const int64_t sa = static_cast<int64_t>(a);
  const int64_t sb = static_cast<int64_t>(b);
  switch (pred) {
    case IrCmp::kEq:
      return a == b;
    case IrCmp::kNe:
      return a != b;
    case IrCmp::kULt:
      return a < b;
    case IrCmp::kULe:
      return a <= b;
    case IrCmp::kUGt:
      return a > b;
    case IrCmp::kUGe:
      return a >= b;
    case IrCmp::kSLt:
      return sa < sb;
    case IrCmp::kSLe:
      return sa <= sb;
    case IrCmp::kSGt:
      return sa > sb;
    case IrCmp::kSGe:
      return sa >= sb;
  }
  return false;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_EVAL_H_
