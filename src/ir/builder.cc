#include "src/ir/builder.h"

#include "src/common/check.h"

namespace sgxb {

IrBuilder::IrBuilder(const std::string& name, uint32_t num_args) {
  fn_.name = name;
  fn_.num_args = num_args;
  fn_.blocks.emplace_back();  // entry = bb0
  current_ = 0;
}

IrFunction IrBuilder::Finish() {
  const std::string problem = fn_.Verify();
  if (!problem.empty()) {
    FATAL("IR verification failed for " + fn_.name + ": " + problem);
  }
  return std::move(fn_);
}

IrInstr& IrBuilder::Append(IrInstr instr) {
  fn_.blocks[current_].instrs.push_back(std::move(instr));
  return fn_.blocks[current_].instrs.back();
}

ValueId IrBuilder::Const(int64_t value) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kConst;
  instr.imm = value;
  return Append(std::move(instr)).id;
}

ValueId IrBuilder::Arg(uint32_t index) {
  CHECK_LT(index, fn_.num_args);
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kArg;
  instr.imm = index;
  return Append(std::move(instr)).id;
}

ValueId IrBuilder::Bin(IrOp op, ValueId a, ValueId b) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = op;
  instr.args = {a, b};
  return Append(std::move(instr)).id;
}

ValueId IrBuilder::Cmp(IrCmp pred, ValueId a, ValueId b) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kICmp;
  instr.args = {a, b};
  instr.imm = static_cast<int64_t>(pred);
  return Append(std::move(instr)).id;
}

ValueId IrBuilder::Alloca(uint32_t bytes) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kAlloca;
  instr.type = IrType::kPtr;
  instr.imm = bytes;
  return Append(std::move(instr)).id;
}

ValueId IrBuilder::Malloc(ValueId size) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kMalloc;
  instr.type = IrType::kPtr;
  instr.args = {size};
  return Append(std::move(instr)).id;
}

void IrBuilder::Free(ValueId ptr) {
  IrInstr instr;
  instr.op = IrOp::kFree;
  instr.args = {ptr};
  Append(std::move(instr));
}

ValueId IrBuilder::Gep(ValueId base, ValueId index, uint32_t scale, uint32_t offset) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kGep;
  instr.type = IrType::kPtr;
  instr.args = {base, index};
  instr.imm = scale;
  instr.imm2 = offset;
  return Append(std::move(instr)).id;
}

ValueId IrBuilder::Load(IrType type, ValueId ptr) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kLoad;
  instr.type = type;
  instr.args = {ptr};
  return Append(std::move(instr)).id;
}

void IrBuilder::Store(IrType type, ValueId value, ValueId ptr) {
  IrInstr instr;
  instr.op = IrOp::kStore;
  instr.type = type;
  instr.args = {value, ptr};
  Append(std::move(instr));
}

ValueId IrBuilder::Call(const std::string& symbol, std::vector<ValueId> args) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kCall;
  instr.args = std::move(args);
  instr.symbol = symbol;
  return Append(std::move(instr)).id;
}

uint32_t IrBuilder::NewBlock() {
  fn_.blocks.emplace_back();
  return static_cast<uint32_t>(fn_.blocks.size() - 1);
}

void IrBuilder::SetBlock(uint32_t block) {
  CHECK_LT(block, fn_.blocks.size());
  current_ = block;
}

void IrBuilder::Br(uint32_t target) {
  IrInstr instr;
  instr.op = IrOp::kBr;
  instr.imm = target;
  Append(std::move(instr));
  fn_.blocks[target].preds.push_back(current_);
}

void IrBuilder::CondBr(ValueId cond, uint32_t on_true, uint32_t on_false) {
  IrInstr instr;
  instr.op = IrOp::kCondBr;
  instr.args = {cond};
  instr.imm = on_true;
  instr.imm2 = on_false;
  Append(std::move(instr));
  fn_.blocks[on_true].preds.push_back(current_);
  fn_.blocks[on_false].preds.push_back(current_);
}

void IrBuilder::Ret(ValueId value) {
  IrInstr instr;
  instr.op = IrOp::kRet;
  if (value != 0) {
    instr.args = {value};
  }
  Append(std::move(instr));
}

ValueId IrBuilder::Phi(IrType type, std::vector<ValueId> incoming) {
  IrInstr instr;
  instr.id = NextId();
  instr.op = IrOp::kPhi;
  instr.type = type;
  instr.args = std::move(incoming);
  // Phis must precede non-phi instructions: insert at the front group.
  auto& instrs = fn_.blocks[current_].instrs;
  size_t pos = 0;
  while (pos < instrs.size() && instrs[pos].op == IrOp::kPhi) {
    ++pos;
  }
  instrs.insert(instrs.begin() + pos, instr);
  return instr.id;
}

IrBuilder::Loop IrBuilder::BeginCountedLoop(ValueId start, ValueId bound, int64_t step) {
  Loop loop;
  loop.preheader = current_;
  loop.header = NewBlock();
  loop.body = NewBlock();
  loop.exit = NewBlock();
  loop.bound = bound;
  loop.step = step;

  Br(loop.header);
  SetBlock(loop.header);
  // Incoming from preheader now; latch value patched in EndLoop.
  loop.phi_index = 0;
  loop.iv = Phi(IrType::kI64, {start});
  const ValueId cond = Cmp(IrCmp::kSLt, loop.iv, bound);
  CondBr(cond, loop.body, loop.exit);
  SetBlock(loop.body);
  return loop;
}

void IrBuilder::EndLoop(Loop& loop) {
  // Latch: iv_next = iv + step; br header.
  const ValueId step_val = Const(loop.step);
  const ValueId next = Add(loop.iv, step_val);
  Br(loop.header);
  // Patch the phi with the latch incoming value.
  IrBlock& header = fn_.blocks[loop.header];
  for (auto& instr : header.instrs) {
    if (instr.op == IrOp::kPhi && instr.id == loop.iv) {
      instr.args.push_back(next);
      break;
    }
  }
  SetBlock(loop.exit);
}

}  // namespace sgxb
