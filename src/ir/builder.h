// Convenience builder for IR functions, including the canonical loop shape
// the scalar-evolution analysis recognizes:
//
//   preheader:  br header
//   header:     iv = phi [start from preheader, next from latch]
//               c = icmp slt iv, bound ; condbr c body exit
//   body..latch: ... ; next = add iv, step ; br header
//
// IrBuilder::BeginCountedLoop/EndLoop emit exactly this shape.

#ifndef SGXBOUNDS_SRC_IR_BUILDER_H_
#define SGXBOUNDS_SRC_IR_BUILDER_H_

#include "src/ir/ir.h"

namespace sgxb {

class IrBuilder {
 public:
  explicit IrBuilder(const std::string& name, uint32_t num_args = 0);

  IrFunction Finish();

  // --- values -----------------------------------------------------------------
  ValueId Const(int64_t value);
  ValueId Arg(uint32_t index);
  ValueId Bin(IrOp op, ValueId a, ValueId b);
  ValueId Add(ValueId a, ValueId b) { return Bin(IrOp::kAdd, a, b); }
  ValueId Sub(ValueId a, ValueId b) { return Bin(IrOp::kSub, a, b); }
  ValueId Mul(ValueId a, ValueId b) { return Bin(IrOp::kMul, a, b); }
  ValueId Cmp(IrCmp pred, ValueId a, ValueId b);

  // --- memory -----------------------------------------------------------------
  ValueId Alloca(uint32_t bytes);
  ValueId Malloc(ValueId size);
  void Free(ValueId ptr);
  ValueId Gep(ValueId base, ValueId index, uint32_t scale, uint32_t offset = 0);
  ValueId Load(IrType type, ValueId ptr);
  void Store(IrType type, ValueId value, ValueId ptr);
  ValueId Call(const std::string& symbol, std::vector<ValueId> args = {});

  // --- control flow -------------------------------------------------------------
  uint32_t NewBlock();
  void SetBlock(uint32_t block);
  uint32_t current_block() const { return current_; }
  void Br(uint32_t target);
  void CondBr(ValueId cond, uint32_t on_true, uint32_t on_false);
  void Ret(ValueId value = 0);
  ValueId Phi(IrType type, std::vector<ValueId> incoming);

  // --- structured counted loop ----------------------------------------------------
  struct Loop {
    uint32_t preheader;
    uint32_t header;
    uint32_t body;
    uint32_t exit;
    ValueId iv;
    // Internal state for EndLoop.
    ValueId bound;
    int64_t step;
    size_t phi_index;
  };

  // Emits the preheader jump and loop header; leaves the builder positioned
  // in the body block with `iv` available. Iterates iv = start; iv < bound;
  // iv += step.
  Loop BeginCountedLoop(ValueId start, ValueId bound, int64_t step);
  // Emits the latch (iv increment, back-edge) and positions at the exit.
  void EndLoop(Loop& loop);

 private:
  IrInstr& Append(IrInstr instr);
  ValueId NextId() { return fn_.num_values++; }

  IrFunction fn_;
  uint32_t current_ = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_IR_BUILDER_H_
