// Shadow IR lowering: anchor-tagged pointers (kMaskPtr arithmetic, exactly
// as SGXBounds) with kSchemeCheck/kSchemeCheckRange dispatched to
// ShadowRuntime, through the scheme-generic check pipeline. The 8-byte
// granule is the in-field elision floor: a constant offset below the
// object's rounded footprint can never trap, so the check is droppable when
// the pass proves it. Which of the pipeline's passes actually run comes
// from PolicyOptions - the registry defaults for this scheme turn on all
// five (see scheme.cc), making it the showcase for the ShadowBound-style
// passes.

#ifndef SGXBOUNDS_SRC_POLICY_SHADOW_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_SHADOW_IR_LOWERING_H_

#include "src/ir/opt/pipeline.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/shadow/shadow_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<ShadowPolicy> {
  static CheckPassStats Apply(ShadowPolicy& policy, Interpreter& interp,
                              IrFunction& fn, const PolicyOptions& options) {
    const CheckPassStats stats = RunCheckPipeline(
        fn, TaggedSchemeCheckLowering(kShadowGranule), CheckConfigFrom(options));
    interp.AttachScheme(&policy.runtime());
    return stats;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SHADOW_IR_LOWERING_H_
