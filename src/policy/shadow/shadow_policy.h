// ShadowBound-style scheme as a workload policy: bounds live in 8-byte-
// granule shadow memory as {distance-to-start, distance-to-end} pairs, so a
// check is one dependent shadow load (both bounds reconstructed from it)
// instead of SGXBounds' pointer decode + LB footer load, and free() clears
// the entries - adding use-after-free detection the paper's three schemes
// lack. The SS4.4 optimizations map as for SGXBounds (LoadField/StoreField
// elide provably-safe checks; OpenSpan hoists one range check), and the
// scheme's registry defaults additionally switch on the three new pipeline
// passes (redundant / pattern-loop / in-field elision).
//
// The whole scheme lives in this directory; the rest of the repo sees it
// only through the registry (scheme_list.h is the single registration line).

#ifndef SGXBOUNDS_SRC_POLICY_SHADOW_SHADOW_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_SHADOW_SHADOW_POLICY_H_

#include <cstring>

#include "src/fault/fault.h"
#include "src/policy/policy.h"
#include "src/policy/registry.h"
#include "src/policy/shadow/shadow_runtime.h"

namespace sgxb {

class ShadowPolicy {
 public:
  static constexpr PolicyKind kKind = PolicyKind::kShadow;

  // Registry entry (defined in this scheme's scheme.cc).
  static const SchemeDescriptor& Descriptor();

  using Ptr = ShadowPtr;

  ShadowPolicy(Enclave* enclave, Heap* heap, const PolicyOptions& options)
      : enclave_(enclave), rt_(enclave, heap), options_(options) {}

  Ptr Malloc(Cpu& cpu, uint32_t size) { return rt_.Malloc(cpu, size); }

  Ptr AlignedAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
    return rt_.MallocAligned(cpu, size, align);
  }
  Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem) { return rt_.Calloc(cpu, count, elem); }
  void Free(Cpu& cpu, Ptr p) { rt_.Free(cpu, p); }

  Ptr Offset(Cpu& cpu, Ptr p, int64_t delta) { return rt_.PtrAdd(cpu, p, delta); }

  uint32_t AddrOf(Ptr p) const { return ShAddr(p); }
  static Ptr FromAddr(uint32_t addr) { return addr; }  // untagged: no bounds

  template <typename T>
  T Load(Cpu& cpu, Ptr p) {
    const uint32_t addr = rt_.CheckAccess(cpu, p, sizeof(T), AccessType::kRead);
    return enclave_->Load<T>(cpu, addr);
  }

  template <typename T>
  void Store(Cpu& cpu, Ptr p, T value) {
    const uint32_t addr = rt_.CheckAccess(cpu, p, sizeof(T), AccessType::kWrite);
    enclave_->Store<T>(cpu, addr, value);
  }

  // Checked access at a dynamic offset: anchor-preserving add folds into
  // addressing (one ALU op), then the shadow-load check.
  template <typename T>
  T LoadAt(Cpu& cpu, Ptr p, uint64_t off) {
    cpu.Alu(1);
    return Load<T>(cpu, ShAdd(p, static_cast<int64_t>(off)));
  }

  template <typename T>
  void StoreAt(Cpu& cpu, Ptr p, uint64_t off, T value) {
    cpu.Alu(1);
    Store<T>(cpu, ShAdd(p, static_cast<int64_t>(off)), value);
  }

  // Provably-safe field access (SS4.4 "safe memory accesses"): elision emits
  // a raw access on the untagged address - skipping the shadow load.
  template <typename T>
  T LoadField(Cpu& cpu, Ptr p, uint32_t off) {
    if (options_.opt_safe_elision) {
      cpu.Alu(1);
      return enclave_->Load<T>(cpu, ShAddr(p) + off);
    }
    return Load<T>(cpu, ShAdd(p, off));
  }

  template <typename T>
  void StoreField(Cpu& cpu, Ptr p, uint32_t off, T value) {
    if (options_.opt_safe_elision) {
      cpu.Alu(1);
      enclave_->Store<T>(cpu, ShAddr(p) + off, value);
      return;
    }
    Store<T>(cpu, ShAdd(p, off), value);
  }

  // Pointer-in-memory: the anchor rides in the 64-bit slot, so a plain
  // 8-byte load/store moves pointer and provenance atomically - the same
  // property SGXBounds gets from its tagged representation (SS4.1).
  Ptr LoadPtr(Cpu& cpu, Ptr slot) {
    const uint32_t addr = rt_.CheckAccess(cpu, slot, kPtrSlotBytes, AccessType::kRead);
    return enclave_->Load<uint64_t>(cpu, addr);
  }

  void StorePtr(Cpu& cpu, Ptr slot, Ptr value) {
    const uint32_t addr = rt_.CheckAccess(cpu, slot, kPtrSlotBytes, AccessType::kWrite);
    enclave_->Store<uint64_t>(cpu, addr, value);
  }

  // Loop span (SS4.4 check hoisting): one range check, unchecked body.
  class Span {
   public:
    Span(ShadowPolicy* policy, Ptr base, bool hoisted)
        : policy_(policy), base_(base), hoisted_(hoisted) {}

    template <typename T>
    T Load(Cpu& cpu, uint64_t byte_off) {
      if (hoisted_) {
        cpu.Alu(1);
        return policy_->enclave_->Load<T>(cpu,
                                          ShAddr(base_) + static_cast<uint32_t>(byte_off));
      }
      return policy_->Load<T>(cpu, ShAdd(base_, static_cast<int64_t>(byte_off)));
    }

    template <typename T>
    void Store(Cpu& cpu, uint64_t byte_off, T value) {
      if (hoisted_) {
        cpu.Alu(1);
        policy_->enclave_->Store<T>(cpu, ShAddr(base_) + static_cast<uint32_t>(byte_off),
                                    value);
        return;
      }
      policy_->Store<T>(cpu, ShAdd(base_, static_cast<int64_t>(byte_off)), value);
    }

   private:
    ShadowPolicy* policy_;
    Ptr base_;
    bool hoisted_;
  };

  Span OpenSpan(Cpu& cpu, Ptr base, uint64_t extent_bytes) {
    if (options_.opt_hoist_checks) {
      rt_.CheckRange(cpu, base, extent_bytes);
      return Span(this, base, /*hoisted=*/true);
    }
    return Span(this, base, /*hoisted=*/false);
  }

  void Memcpy(Cpu& cpu, Ptr dst, Ptr src, uint32_t n) {
    if (n == 0) {
      return;
    }
    // Instrumented-libc semantics: check both args once, then bulk move.
    const uint32_t src_addr = rt_.CheckAccess(cpu, src, n, AccessType::kRead);
    const uint32_t dst_addr = rt_.CheckAccess(cpu, dst, n, AccessType::kWrite);
    cpu.MemAccess(src_addr, n, AccessClass::kAppLoad);
    cpu.MemAccess(dst_addr, n, AccessClass::kAppStore);
    std::memmove(enclave_->space().HostPtr(dst_addr), enclave_->space().HostPtr(src_addr), n);
  }

  void Memset(Cpu& cpu, Ptr dst, uint8_t value, uint32_t n) {
    if (n == 0) {
      return;
    }
    const uint32_t dst_addr = rt_.CheckAccess(cpu, dst, n, AccessType::kWrite);
    cpu.MemAccess(dst_addr, n, AccessClass::kAppStore);
    std::memset(enclave_->space().HostPtr(dst_addr), value, n);
  }

  // Shadow entries are in-memory metadata: the fault injector's
  // kMetadataFlip events hit them, like ASan's shadow bytes and MPX's
  // bounds tables.
  void AttachFaults(FaultInjector* faults) {
    faults->RegisterMetadataCorruptor(
        [this](Cpu& cpu, Rng& rng) { return rt_.CorruptShadowEntry(cpu, rng); });
  }

  Enclave* enclave() { return enclave_; }
  ShadowRuntime& runtime() { return rt_; }

 private:
  Enclave* enclave_;
  ShadowRuntime rt_;
  PolicyOptions options_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SHADOW_SHADOW_POLICY_H_
