// ShadowBound-style runtime: packed {distance-to-start, distance-to-end}
// pairs in 8-byte-granule shadow memory (PAPERS.md: ShadowBound, 2024).
//
// This is the sixth scheme plugged into the policy registry, implemented
// entirely under src/policy/shadow/ and lowered through the scheme-generic
// check pipeline (src/ir/opt) with zero shadow-specific code in src/ir.
//
// Metadata layout. Every 8-byte granule of an allocated object owns one
// 4-byte shadow entry:
//
//     [ dist_start:16 | dist_end:16 ]   granule counts, so 16 bits span
//                                       512 KiB from each edge
//
// with LB = granule_base - dist_start*8 and UB = granule_base + dist_end*8.
// The pair makes a single dependent shadow load sufficient to reconstruct
// BOTH bounds at any granule of the object - ShadowBound's core trick - so
// a check is one metadata load + ALU + branch, where SGXBounds pays a
// pointer-tag decode + LB footer load and ASan learns only "addressable",
// not which object. 0xffff in either field is the large-object escape: the
// exact extent comes from a host-side side table (charged as an extra
// table-walk, the rare case). An all-zero entry means "no live object",
// which is what free() leaves behind - giving use-after-free detection for
// stale anchors, a capability none of the paper's three schemes claims.
//
// Pointers carry the allocation base ("anchor") in the unused upper 32 bits:
//
//     [ anchor:32 | addr:32 ]
//
// so provenance survives arbitrary pointer arithmetic with the same masked
// add SGXBounds uses (kMaskPtr works unchanged), and the check loads the
// shadow entry of the ANCHOR's granule - a pointer that walked into a
// neighboring object is still judged against the object it was derived
// from. A zero anchor marks an uninstrumented origin and passes unchecked
// (the UB == 0 convention of SGXBounds/l4ptr).
//
// Shadow space is NOT a flat 1/2-scale mirror: that would cost 2 GiB of the
// 4 GiB enclave space the 3 GiB heap already dominates. Instead, shadow
// tables are allocated on demand like MPX's bounds tables: one 4 MiB table
// per 8 MiB application region, found through a 2 KiB directory committed at
// startup. The scheme therefore shares MPX's address-space-pressure story
// (huge pointer-bearing heaps can exhaust the space) at 1/2 scale instead
// of MPX's 4x.
//
// Violations raise TrapKind::kPolicyViolation. Fault campaigns can flip
// shadow-entry bits (CorruptShadowEntry), which can both fabricate and mask
// violations - the conformance/fault batteries exercise this surface.

#ifndef SGXBOUNDS_SRC_POLICY_SHADOW_SHADOW_RUNTIME_H_
#define SGXBOUNDS_SRC_POLICY_SHADOW_SHADOW_RUNTIME_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/enclave/enclave.h"
#include "src/ir/scheme_rt.h"
#include "src/runtime/heap.h"
#include "src/runtime/stack.h"

namespace sgxb {

// A tagged shadow pointer: [anchor:32 | addr:32].
using ShadowPtr = uint64_t;

inline constexpr uint32_t kShadowGranule = 8;

inline constexpr uint32_t ShAddr(ShadowPtr p) { return static_cast<uint32_t>(p); }
inline constexpr uint32_t ShAnchor(ShadowPtr p) { return static_cast<uint32_t>(p >> 32); }
inline constexpr ShadowPtr ShEncode(uint32_t anchor, uint32_t addr) {
  return (static_cast<uint64_t>(anchor) << 32) | addr;
}

// Anchor-preserving pointer arithmetic (the uop kMaskPtr form works
// unchanged: upper 32 bits from the base, low 32 from the arithmetic).
inline constexpr ShadowPtr ShAdd(ShadowPtr p, int64_t delta) {
  return (p & 0xffffffff00000000ULL) |
         ((p + static_cast<uint64_t>(delta)) & 0xffffffffULL);
}

// Bytes one object occupies: rounded up to the 8-byte shadow granule.
inline constexpr uint32_t ShFootprint(uint32_t size) {
  return size <= kShadowGranule
             ? kShadowGranule
             : (size + kShadowGranule - 1) & ~(kShadowGranule - 1);
}

struct ShadowStats {
  uint64_t objects_created = 0;
  uint64_t objects_freed = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;
  uint64_t slow_path_checks = 0;  // large-object escape entries
  uint64_t tables_allocated = 0;
};

class ShadowRuntime final : public IrSchemeRuntime {
 public:
  ShadowRuntime(Enclave* enclave, Heap* heap) : enclave_(enclave), heap_(heap) {
    // 2 KiB directory (one 4-byte slot per 8 MiB region), live from startup.
    dir_base_ = enclave_->pages().ReserveHigh(kDirEntries * 4, "shadow-dir",
                                              VmAccounting::kFull);
    enclave_->pages().Commit(nullptr, dir_base_, kDirEntries * 4);
  }

  // --- Object lifecycle -----------------------------------------------------

  // Tags caller-owned storage at [base, base + ShFootprint(size)); base must
  // be 8-byte aligned (stack/bss/data objects carved by the caller).
  ShadowPtr SpecifyBounds(Cpu& cpu, uint32_t base, uint32_t size) {
    WriteObjectEntries(cpu, base, ShFootprint(size) / kShadowGranule);
    ++stats_.objects_created;
    return ShEncode(base, base);
  }

  ShadowPtr Malloc(Cpu& cpu, uint32_t size) {
    const uint32_t base = heap_->Alloc(cpu, ShFootprint(size), kShadowGranule);
    return SpecifyBounds(cpu, base, size);
  }

  ShadowPtr MallocAligned(Cpu& cpu, uint32_t size, uint32_t align) {
    const uint32_t eff_align = align <= kShadowGranule ? kShadowGranule : align;
    const uint32_t base = heap_->Alloc(cpu, ShFootprint(size), eff_align);
    return SpecifyBounds(cpu, base, size);
  }

  ShadowPtr Calloc(Cpu& cpu, uint32_t count, uint32_t elem_size) {
    const uint32_t bytes = count * elem_size;
    const ShadowPtr p = Malloc(cpu, bytes);
    if (bytes > 0) {
      cpu.MemAccess(ShAddr(p), bytes, AccessClass::kAppStore);
      std::memset(enclave_->space().HostPtr(ShAddr(p)), 0, bytes);
    }
    return p;
  }

  void Free(Cpu& cpu, ShadowPtr p) {
    const uint32_t anchor = ShAnchor(p);
    if (anchor == 0) {
      heap_->Free(cpu, ShAddr(p));  // untagged: uninstrumented origin
      return;
    }
    // The base entry's dist_end is the footprint; clearing every entry is
    // what arms use-after-free detection for stale anchors.
    const uint32_t granules = ObjectGranules(cpu, anchor);
    ClearObjectEntries(cpu, anchor, granules);
    big_objects_.erase(anchor);
    heap_->Free(cpu, anchor);
    ++stats_.objects_freed;
  }

  // --- Instrumentation primitives --------------------------------------------

  // Anchor-preserving add: same masked-add cost as SGXBounds (the anchor is
  // a plain base address, no field decode).
  ShadowPtr PtrAdd(Cpu& cpu, ShadowPtr p, int64_t delta) {
    cpu.Alu(2);
    return ShAdd(p, delta);
  }

  // The ShadowBound check: ONE dependent shadow load at the anchor's granule
  // yields both bounds. 3 ALU (granule index, field unpack, bound
  // materialization) + the entry load + 2 branches (escape test, verdict).
  uint32_t CheckAccess(Cpu& cpu, ShadowPtr p, uint32_t size, AccessType type) {
    const uint32_t addr = ShAddr(p);
    const uint32_t anchor = ShAnchor(p);
    if (anchor == 0) {
      return addr;  // untagged: uninstrumented origin, no bounds known
    }
    uint32_t lb = 0;
    uint64_t ub = 0;
    LoadBounds(cpu, anchor, &lb, &ub, addr, type);
    if (addr < lb || static_cast<uint64_t>(addr) + size > ub) {
      Violation(cpu, addr, type);
    }
    return addr;
  }

  // Hoisted range check: verifies [p, p + extent) once; loop bodies then
  // access the span unchecked.
  void CheckRange(Cpu& cpu, ShadowPtr p, uint64_t extent_bytes) {
    const uint32_t addr = ShAddr(p);
    const uint32_t anchor = ShAnchor(p);
    if (anchor == 0) {
      return;
    }
    uint32_t lb = 0;
    uint64_t ub = 0;
    LoadBounds(cpu, anchor, &lb, &ub, addr, AccessType::kReadWrite);
    if (addr < lb || static_cast<uint64_t>(addr) + extent_bytes > ub) {
      Violation(cpu, addr, AccessType::kReadWrite);
    }
  }

  // --- IrSchemeRuntime (the IR pipeline's generic scheme hooks) ---------------

  uint64_t IrAlloca(Cpu& cpu, StackAllocator& stack, uint32_t bytes) override {
    const uint32_t base = stack.Alloca(cpu, ShFootprint(bytes), kShadowGranule);
    return SpecifyBounds(cpu, base, bytes);
  }

  uint64_t IrMalloc(Cpu& cpu, uint32_t bytes) override { return Malloc(cpu, bytes); }

  void IrFree(Cpu& cpu, uint64_t ptr) override { Free(cpu, ptr); }

  void IrCheck(Cpu& cpu, uint64_t ptr, uint32_t bytes, AccessType type) override {
    CheckAccess(cpu, ptr, bytes, type);
  }

  void IrCheckRange(Cpu& cpu, uint64_t ptr, uint64_t extent) override {
    CheckRange(cpu, ptr, extent);
  }

  // --- Fault campaigns --------------------------------------------------------

  // Flips one RNG-chosen bit of the shadow entry covering an RNG-chosen
  // address in the allocated heap span (charged metadata load + store). A
  // dist flip can shrink bounds (false violation), widen them (missed
  // violation) or fabricate a live object over freed memory.
  bool CorruptShadowEntry(Cpu& cpu, Rng& rng) {
    const uint64_t span = heap_->used_bytes();
    if (span == 0) {
      return false;
    }
    const uint32_t addr = heap_->base() + static_cast<uint32_t>(rng.NextBounded(span));
    const uint32_t eaddr = EntryAddr(cpu, addr);
    enclave_->pages().Commit(&cpu, eaddr, 4);
    const uint32_t entry = enclave_->Load<uint32_t>(cpu, eaddr, AccessClass::kMetadataLoad);
    const uint32_t flipped = entry ^ (1u << rng.NextBounded(32));
    enclave_->Store<uint32_t>(cpu, eaddr, flipped, AccessClass::kMetadataStore);
    return true;
  }

  Enclave* enclave() { return enclave_; }
  const ShadowStats& stats() const { return stats_; }
  uint32_t table_count() const { return static_cast<uint32_t>(tables_.size()); }

 private:
  static constexpr uint32_t kRegionShift = 23;  // 8 MiB app region per table
  static constexpr uint32_t kRegionBytes = 1u << kRegionShift;
  // (8 MiB / 8-byte granule) * 4-byte entry = 4 MiB per table.
  static constexpr uint64_t kTableBytes = (kRegionBytes / kShadowGranule) * 4ull;
  static constexpr uint32_t kDirEntries = 512;  // 4 GiB / 8 MiB
  static constexpr uint32_t kEscape = 0xffffu;  // large-object marker
  // Side-table walk for large objects: rare, fixed charge (cf. MPX's
  // bndldx/bndstx table-walk constant).
  static constexpr uint32_t kLargeObjectWalkCycles = 50;

  static constexpr uint32_t EncodeEntry(uint32_t dist_start, uint32_t dist_end) {
    return (dist_start << 16) | dist_end;
  }

  // Shadow entry address for `addr`'s granule; charges the directory load on
  // a region-cache miss and reserves the 4 MiB table on first touch.
  uint32_t EntryAddr(Cpu& cpu, uint32_t addr) {
    const uint32_t region = addr >> kRegionShift;
    uint32_t table_base;
    if (region == cached_region_) {
      cpu.Alu(1);  // the hot path: base is live in a register
      table_base = cached_table_;
    } else {
      const uint32_t dir_entry = dir_base_ + region * 4;
      cpu.MemAccess(dir_entry, 4, AccessClass::kMetadataLoad);
      auto it = tables_.find(region);
      if (it == tables_.end()) {
        // First touch of this region: reserve the table, as MPX reserves a
        // bounds table on a #BR fault. Address space accounting is real -
        // enough such tables exhaust the 32-bit space.
        table_base = enclave_->pages().ReserveLow(kTableBytes, "shadow-tab",
                                                  VmAccounting::kFull);
        ++stats_.tables_allocated;
        cpu.Charge(6000);
        cpu.MemAccess(dir_entry, 4, AccessClass::kMetadataStore);
        tables_.emplace(region, table_base);
      } else {
        table_base = it->second;
      }
      cached_region_ = region;
      cached_table_ = table_base;
    }
    return table_base + ((addr & (kRegionBytes - 1)) / kShadowGranule) * 4;
  }

  // Decodes [lb, ub) from the anchor's shadow entry; traps on a cleared
  // entry (freed object / wild anchor).
  void LoadBounds(Cpu& cpu, uint32_t anchor, uint32_t* lb, uint64_t* ub,
                  uint32_t fault_addr, AccessType type) {
    cpu.Alu(3);
    ++stats_.checks;
    ++cpu.counters().bounds_checks;
    const uint32_t eaddr = EntryAddr(cpu, anchor);
    enclave_->pages().Commit(&cpu, eaddr, 4);
    cpu.MemAccess(eaddr, 4, AccessClass::kMetadataLoad);
    cpu.Branch(2);
    uint32_t entry;
    std::memcpy(&entry, enclave_->space().HostPtr(eaddr), 4);
    if (entry == 0) {
      ++stats_.violations;
      ++cpu.counters().bounds_violations;
      throw SimTrap(TrapKind::kPolicyViolation, fault_addr,
                    "shadow: stale or wild pointer");
    }
    const uint32_t dist_start = entry >> 16;
    const uint32_t dist_end = entry & 0xffffu;
    const uint32_t granule_base = anchor & ~(kShadowGranule - 1);
    if (dist_start == kEscape || dist_end == kEscape) {
      // Large object: exact extent from the side table.
      ++stats_.slow_path_checks;
      cpu.Charge(kLargeObjectWalkCycles);
      auto it = big_objects_.find(anchor);
      if (it == big_objects_.end()) {
        ++stats_.violations;
        ++cpu.counters().bounds_violations;
        throw SimTrap(TrapKind::kPolicyViolation, fault_addr,
                      type == AccessType::kWrite
                          ? "shadow: out-of-bounds write"
                          : "shadow: out-of-bounds access");
      }
      *lb = it->first;
      *ub = static_cast<uint64_t>(it->first) + it->second;
      return;
    }
    *lb = granule_base - dist_start * kShadowGranule;
    *ub = static_cast<uint64_t>(granule_base) + dist_end * kShadowGranule;
  }

  [[noreturn]] void Violation(Cpu& cpu, uint32_t addr, AccessType type) {
    ++stats_.violations;
    ++cpu.counters().bounds_violations;
    throw SimTrap(TrapKind::kPolicyViolation, addr,
                  type == AccessType::kWrite ? "shadow: out-of-bounds write"
                                             : "shadow: out-of-bounds access");
  }

  // Footprint (in granules) of the live object based at `anchor`, read back
  // from its base entry (or the side table for large objects).
  uint32_t ObjectGranules(Cpu& cpu, uint32_t anchor) {
    const uint32_t eaddr = EntryAddr(cpu, anchor);
    enclave_->pages().Commit(&cpu, eaddr, 4);
    cpu.MemAccess(eaddr, 4, AccessClass::kMetadataLoad);
    uint32_t entry;
    std::memcpy(&entry, enclave_->space().HostPtr(eaddr), 4);
    const uint32_t dist_end = entry & 0xffffu;
    if (dist_end == kEscape || (entry >> 16) == kEscape) {
      auto it = big_objects_.find(anchor);
      return it == big_objects_.end() ? 0 : it->second / kShadowGranule;
    }
    return dist_end;
  }

  // Writes the {dist_start, dist_end} pair for every granule of a new
  // object (0xffff escape entries + a side-table record for objects too
  // large for 16-bit granule counts). Metadata traffic: 4 bytes per 8
  // application bytes, batched per region.
  void WriteObjectEntries(Cpu& cpu, uint32_t base, uint32_t granules) {
    const bool escape = granules >= kEscape;
    if (escape) {
      big_objects_[base] = granules * kShadowGranule;
    }
    ForEachRegionRun(cpu, base, granules, [&](uint8_t* host, uint32_t first_g,
                                              uint32_t n) {
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t g = first_g + i;
        const uint32_t entry = escape ? EncodeEntry(kEscape, kEscape)
                                      : EncodeEntry(g, granules - g);
        std::memcpy(host + i * 4, &entry, 4);
      }
    });
  }

  void ClearObjectEntries(Cpu& cpu, uint32_t base, uint32_t granules) {
    ForEachRegionRun(cpu, base, granules,
                     [&](uint8_t* host, uint32_t, uint32_t n) {
                       std::memset(host, 0, n * 4ull);
                     });
  }

  // Runs `body(host_entry_ptr, first_granule, count)` over the object's
  // shadow entries, split at 8 MiB region boundaries, charging commit +
  // metadata-store traffic per run.
  template <typename Body>
  void ForEachRegionRun(Cpu& cpu, uint32_t base, uint32_t granules, const Body& body) {
    uint32_t g = 0;
    while (g < granules) {
      const uint32_t addr = base + g * kShadowGranule;
      const uint32_t eaddr = EntryAddr(cpu, addr);
      const uint32_t region_left =
          (kRegionBytes - (addr & (kRegionBytes - 1))) / kShadowGranule;
      const uint32_t n = std::min(granules - g, region_left);
      enclave_->pages().Commit(&cpu, eaddr, n * 4ull);
      cpu.MemAccessRun(eaddr, 4, 4, n, AccessClass::kMetadataStore);
      body(enclave_->space().HostPtr(eaddr), g, n);
      g += n;
    }
  }

  Enclave* enclave_;
  Heap* heap_;
  uint32_t dir_base_;
  ShadowStats stats_;
  // Host-side mirror of the directory: region index -> table base.
  std::unordered_map<uint32_t, uint32_t> tables_;
  // Single-entry region cache: consecutive checks in the same 8 MiB region
  // skip the directory load (the common case by far).
  uint32_t cached_region_ = 0xffffffffu;
  uint32_t cached_table_ = 0;
  // Large-object side table: base -> footprint bytes (host-side metadata;
  // the simulated cost is kLargeObjectWalkCycles per escape-entry check).
  std::map<uint32_t, uint32_t> big_objects_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SHADOW_SHADOW_RUNTIME_H_
