// Registry entry + RIPE participation for the shadow-distance scheme.
//
// This file and the three headers next to it are the ENTIRE scheme; the
// only line outside this directory that knows it exists is its entry in
// scheme_list.h (plus the appended PolicyKind value).

#include <cstring>

#include "src/policy/shadow/shadow_policy.h"
#include "src/ripe/defense.h"

namespace sgxb {
namespace {

// Bounds live in shadow entries keyed by the pointer's anchor; carved
// objects are padded only to the 8-byte granule (no power-of-two blowup).
// Instrumented libc checks the destination range against the shadow entry
// before copying.
//
// Expected Table 4 outcome: 8/16. All 8 inter-object attacks die (the
// 72-byte victim rounds to a 72-byte footprint, so the first overflowing
// byte already crosses dist_end); all 8 intra-object attacks survive -
// shadow distances describe whole allocations, not interior fields, the
// same structural miss as every other bounds scheme here.
class ShadowRipeDefense final : public RipeDefense {
 public:
  explicit ShadowRipeDefense(const RipeMachine& m)
      : m_(m), rt_(m.enclave, m.heap) {}

  RipeObj AllocateHeap(Cpu& cpu, uint32_t size) override {
    RipeObj obj;
    obj.size = size;
    obj.handle = rt_.Malloc(cpu, size);
    obj.addr = ShAddr(obj.handle);
    return obj;
  }

  void RegisterNonHeap(Cpu& cpu, RipeObj& obj) override {
    obj.handle = rt_.SpecifyBounds(cpu, obj.addr, obj.size);
  }

  uint32_t CarveAlign() const override { return kShadowGranule; }
  uint32_t CarveFootprint(uint32_t size) const override { return ShFootprint(size); }

  bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) override {
    rt_.CheckAccess(cpu, ShAdd(obj.handle, offset), 1, AccessType::kWrite);
    m_.enclave->Store<uint8_t>(cpu, obj.addr + offset, value);
    return true;
  }

  bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                    uint32_t n) override {
    // Instrumented memcpy: one range check on the destination's shadow entry.
    rt_.CheckRange(cpu, obj.handle, n);
    cpu.MemAccess(obj.addr, n, AccessClass::kAppStore);
    std::memcpy(m_.enclave->space().HostPtr(obj.addr), payload, n);
    return true;
  }

 private:
  RipeMachine m_;
  ShadowRuntime rt_;
};

std::unique_ptr<RipeDefense> MakeDefense(const RipeMachine& m) {
  return std::make_unique<ShadowRipeDefense>(m);
}

}  // namespace

const SchemeDescriptor& ShadowPolicy::Descriptor() {
  static const SchemeDescriptor* desc = [] {
    auto* d = new SchemeDescriptor();
    d->kind = PolicyKind::kShadow;
    d->id = "shadow";
    d->name = "ShadowDist";
    d->aliases = {"shadowbound"};
    // Not in the paper's four-scheme suite: figure stdout stays comparable
    // with the paper by default; opt in with --policies=...,shadow or =all.
    d->in_paper_suite = false;
    d->metadata_surface =
        "4-byte {dist-to-start, dist-to-end} shadow entry per 8-byte granule "
        "(on-demand 4 MiB tables)";
    d->caps.detects_oob_write = true;
    d->caps.detects_oob_read = true;
    d->caps.detects_underflow = true;
    // free() zeroes the object's entries, so a stale anchor traps on its
    // next check - the one scheme here that claims temporal detection.
    d->caps.detects_uaf = true;
    // Shadow entries are in-memory metadata; kMetadataFlip can corrupt them.
    d->caps.has_metadata_corruptor = true;
    // Per-scheme defaults: the classic SS4.4 switches PLUS the three
    // ShadowBound-style pipeline passes - this scheme is their showcase.
    // The paper-four schemes leave these off so their instrumentation stays
    // bit-identical with the paper baselines.
    d->default_options.opt_redundant_elision = true;
    d->default_options.opt_pattern_loops = true;
    d->default_options.opt_infield_elision = true;
    d->ripe_expected_prevented = 8;
    d->make_ripe_defense = &MakeDefense;
    return d;
  }();
  return *desc;
}

}  // namespace sgxb
