// The scheme registry's single name<->id table (registry.h).
//
// Everything that used to switch on PolicyKind or hard-code the four scheme
// names - PolicyName, --policy/--policies flag parsing, trace headers, JSON
// keys, RIPE dispatch - reads the descriptor table built here from
// scheme_list.h. There is exactly one list of schemes in the repo.

#include "src/policy/registry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/policy/scheme_list.h"

namespace sgxb {

const std::vector<const SchemeDescriptor*>& AllSchemes() {
  static const std::vector<const SchemeDescriptor*>* all = [] {
    auto* v = new std::vector<const SchemeDescriptor*>();
    SchemePolicies::ForEach([&]<typename P>() {
      const SchemeDescriptor& d = P::Descriptor();
      CHECK(d.kind == P::kKind);
      CHECK(d.id[0] != '\0');
      v->push_back(&d);
      return false;  // visit every scheme
    });
    CHECK_EQ(v->size(), static_cast<size_t>(kPolicyKindCount));
    return v;
  }();
  return *all;
}

const std::vector<const SchemeDescriptor*>& PaperSchemes() {
  static const std::vector<const SchemeDescriptor*>* paper = [] {
    auto* v = new std::vector<const SchemeDescriptor*>();
    for (const SchemeDescriptor* d : AllSchemes()) {
      if (d->in_paper_suite) {
        v->push_back(d);
      }
    }
    return v;
  }();
  return *paper;
}

const SchemeDescriptor& SchemeOf(PolicyKind kind) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    if (d->kind == kind) {
      return *d;
    }
  }
  std::fprintf(stderr, "unregistered PolicyKind %u\n", static_cast<unsigned>(kind));
  std::abort();
}

const char* PolicyName(PolicyKind kind) { return SchemeOf(kind).name; }

const SchemeDescriptor* FindScheme(const std::string& id_or_alias) {
  for (const SchemeDescriptor* d : AllSchemes()) {
    if (id_or_alias == d->id) {
      return d;
    }
    for (const char* alias : d->aliases) {
      if (id_or_alias == alias) {
        return d;
      }
    }
  }
  return nullptr;
}

std::vector<std::string> PolicyChoices() {
  std::vector<std::string> ids;
  for (const SchemeDescriptor* d : AllSchemes()) {
    ids.emplace_back(d->id);
  }
  return ids;
}

namespace {

std::string JoinChoices() {
  std::string out;
  for (const SchemeDescriptor* d : AllSchemes()) {
    if (!out.empty()) {
      out += "|";
    }
    out += d->id;
  }
  return out;
}

}  // namespace

PolicyKind ParsePolicyKind(const std::string& s) {
  const SchemeDescriptor* d = FindScheme(s);
  if (d == nullptr) {
    std::fprintf(stderr, "invalid policy '%s' (valid: %s)\n", s.c_str(),
                 JoinChoices().c_str());
    std::exit(2);
  }
  return d->kind;
}

std::vector<PolicyKind> ParsePolicyList(const std::string& csv, std::string* error) {
  std::vector<PolicyKind> kinds;
  if (csv == "paper" || csv.empty()) {
    for (const SchemeDescriptor* d : PaperSchemes()) {
      kinds.push_back(d->kind);
    }
    return kinds;
  }
  if (csv == "all") {
    for (const SchemeDescriptor* d : AllSchemes()) {
      kinds.push_back(d->kind);
    }
    return kinds;
  }
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string id =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    const SchemeDescriptor* d = FindScheme(id);
    if (d == nullptr) {
      if (error != nullptr) {
        *error = "invalid policy '" + id + "' (valid: " + JoinChoices() +
                 ", or the shorthands 'paper'/'all')";
      }
      return {};
    }
    kinds.push_back(d->kind);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return kinds;
}

}  // namespace sgxb
