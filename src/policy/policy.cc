#include "src/policy/policy.h"

namespace sgxb {

const char* PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNative:
      return "SGX";
    case PolicyKind::kAsan:
      return "ASan";
    case PolicyKind::kMpx:
      return "MPX";
    case PolicyKind::kSgxBounds:
      return "SGXBounds";
  }
  return "?";
}

}  // namespace sgxb
