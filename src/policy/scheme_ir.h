// Aggregates every scheme's IR-lowering specialization. Consumers of the IR
// pipeline (the "ir" suite) include this instead of naming schemes:
//
//   SchemeIrLowering<P>::Apply(env.policy, interp, fn, env.options);
//
// A scheme without an ir_lowering.h (native) gets the uninstrumented
// default from the primary template.

#ifndef SGXBOUNDS_SRC_POLICY_SCHEME_IR_H_
#define SGXBOUNDS_SRC_POLICY_SCHEME_IR_H_

#include "src/policy/asan/ir_lowering.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/l4ptr/ir_lowering.h"
#include "src/policy/mpx/ir_lowering.h"
#include "src/policy/sgxbounds/ir_lowering.h"
#include "src/policy/shadow/ir_lowering.h"

#endif  // SGXBOUNDS_SRC_POLICY_SCHEME_IR_H_
