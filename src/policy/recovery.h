// Trap recovery: classify / contain / retry.
//
// RunWithPolicy historically was one-shot catch-and-die: the first SimTrap
// ends the run. This layer upgrades that into a recovery loop a service-style
// workload opts into per request:
//
//   env.Serve([&] { ... one request ... })
//
// State machine per request:
//
//   serve -> trap? -- no --> done (request served)
//             |
//             v classify
//   transient (kOutOfMemory) --> retry with doubled simulated-cycle backoff,
//             |                  up to max_retries, then contain
//             v otherwise
//   containable --> drop the request, count it, keep serving
//
// A cycle-budget watchdog bounds the whole attempt chain: when a request
// (including its retries and backoff) exceeds request_cycle_budget simulated
// cycles, the trap is rethrown and the run dies — a runaway recovery loop
// must not masquerade as graceful degradation.

#ifndef SGXBOUNDS_SRC_POLICY_RECOVERY_H_
#define SGXBOUNDS_SRC_POLICY_RECOVERY_H_

#include <cstdint>
#include <utility>

#include "src/enclave/trap.h"
#include "src/sim/machine.h"

namespace sgxb {

enum class TrapClass : uint8_t {
  kTransient,    // worth retrying (allocation failure under pressure)
  kContainable,  // drop the request, keep the service alive
};

inline TrapClass ClassifyTrap(TrapKind kind) {
  return kind == TrapKind::kOutOfMemory ? TrapClass::kTransient : TrapClass::kContainable;
}

// Shard-level view of a contained trap, for fleet supervisors (src/farm):
// does one dropped request say anything about the *shard*?
enum class ShardImpact : uint8_t {
  // Isolated per-request failure (transient allocation pressure): drop or
  // retry the request, never indict the shard.
  kRequestOnly,
  // A safety violation the policy contained (bounds trap, poisoned
  // metadata, overlay exhaustion): repeated occurrences indict the shard —
  // each one counts toward the supervisor's consecutive-failure conviction
  // threshold, after which the shard is restarted or failed over.
  kSuspectShard,
};

inline ShardImpact ClassifyShardImpact(TrapKind kind) {
  return ClassifyTrap(kind) == TrapClass::kTransient ? ShardImpact::kRequestOnly
                                                     : ShardImpact::kSuspectShard;
}

struct RecoveryConfig {
  // Off by default: traps propagate exactly as before this layer existed.
  bool enabled = false;
  // Retry budget for transient traps, per request.
  uint32_t max_retries = 3;
  // Simulated-cycle backoff before the first retry; doubles per attempt.
  uint64_t backoff_cycles = 10000;
  // Watchdog: max simulated cycles one request may consume across all its
  // attempts before its trap is rethrown as fatal. 0 disables the watchdog.
  uint64_t request_cycle_budget = 0;
};

struct RecoveryStats {
  uint64_t requests = 0;        // Serve() calls
  uint64_t contained = 0;       // requests dropped after a trap
  uint64_t retried = 0;         // retry attempts issued
  uint64_t recovered = 0;       // requests that succeeded after >= 1 retry
  uint64_t watchdog_kills = 0;  // requests whose trap was rethrown on budget
  uint64_t trap_by_kind[kTrapKindCount] = {};

  uint64_t total_traps() const {
    uint64_t total = 0;
    for (uint32_t i = 0; i < kTrapKindCount; ++i) {
      total += trap_by_kind[i];
    }
    return total;
  }
};

class RecoveryControl {
 public:
  explicit RecoveryControl(const RecoveryConfig& config) : config_(config) {}

  // Runs `fn` as one contained request. Returns true when the request was
  // served (possibly after retries), false when it was dropped. Rethrows the
  // trap when recovery is disabled or the watchdog budget is exhausted.
  template <typename Fn>
  bool Serve(Cpu& cpu, Fn&& fn) {
    ++stats_.requests;
    const uint64_t start_cycles = cpu.cycles();
    uint64_t backoff = config_.backoff_cycles;
    uint32_t attempt = 0;
    for (;;) {
      try {
        fn();
        if (attempt > 0) {
          ++stats_.recovered;
        }
        return true;
      } catch (const SimTrap& trap) {
        ++stats_.trap_by_kind[static_cast<uint8_t>(trap.kind())];
        last_trap_ = trap.kind();
        has_trap_ = true;
        if (!config_.enabled) {
          throw;
        }
        const uint64_t spent = cpu.cycles() - start_cycles;
        if (config_.request_cycle_budget != 0 && spent > config_.request_cycle_budget) {
          ++stats_.watchdog_kills;
          throw;
        }
        if (ClassifyTrap(trap.kind()) == TrapClass::kTransient &&
            attempt < config_.max_retries) {
          ++attempt;
          ++stats_.retried;
          cpu.Charge(backoff);  // simulated wait before the retry
          backoff *= 2;
          continue;
        }
        ++stats_.contained;
        return false;
      }
    }
  }

  const RecoveryConfig& config() const { return config_; }
  const RecoveryStats& stats() const { return stats_; }

  // Kind of the most recent trap any Serve() caught (valid once has_trap());
  // lets a caller that just saw Serve() == false map the drop to a
  // ShardImpact without threading the exception out.
  bool has_trap() const { return has_trap_; }
  TrapKind last_trap() const { return last_trap_; }

 private:
  RecoveryConfig config_;
  RecoveryStats stats_;
  TrapKind last_trap_ = TrapKind::kSegFault;
  bool has_trap_ = false;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_RECOVERY_H_
