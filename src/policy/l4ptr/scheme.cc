// Registry entry + RIPE participation for the l4ptr scheme.
//
// This file and the two headers next to it are the ENTIRE scheme; the only
// line outside this directory that knows l4ptr exists is its entry in
// scheme_list.h (plus the appended PolicyKind value).

#include <cstring>

#include "src/policy/l4ptr/l4ptr_policy.h"
#include "src/ripe/defense.h"

namespace sgxb {
namespace {

// Bounds live in the pointer tag; every carved object is padded to a power
// of two on a 32-byte base. Instrumented libc checks the destination range
// against the tag before copying - register-only, like every l4ptr check.
//
// Expected Table 4 outcome: 8/16. All 8 inter-object attacks die (the two
// direct smashes on the tag check, the six libc-mediated ones on the
// wrapper's range check); all 8 intra-object attacks survive - and here the
// power-of-two padding makes the miss structural: the 72-byte victim struct
// pads to 128, so the overflow never even reaches the object's upper bound.
class L4PtrRipeDefense final : public RipeDefense {
 public:
  explicit L4PtrRipeDefense(const RipeMachine& m)
      : m_(m), rt_(m.enclave, m.heap) {}

  RipeObj AllocateHeap(Cpu& cpu, uint32_t size) override {
    RipeObj obj;
    obj.size = size;
    obj.handle = rt_.Malloc(cpu, size);
    obj.addr = L4Addr(obj.handle);
    return obj;
  }

  void RegisterNonHeap(Cpu& cpu, RipeObj& obj) override {
    obj.handle = rt_.SpecifyBounds(cpu, obj.addr, obj.size);
  }

  uint32_t CarveAlign() const override { return kL4Granule; }
  uint32_t CarveFootprint(uint32_t size) const override { return L4PaddedSize(size); }

  bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) override {
    rt_.CheckAccess(cpu, L4Add(obj.handle, offset), 1, AccessType::kWrite);
    m_.enclave->Store<uint8_t>(cpu, obj.addr + offset, value);
    return true;
  }

  bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                    uint32_t n) override {
    // Instrumented memcpy: one range check on the destination tag.
    rt_.CheckRange(cpu, obj.handle, n);
    cpu.MemAccess(obj.addr, n, AccessClass::kAppStore);
    std::memcpy(m_.enclave->space().HostPtr(obj.addr), payload, n);
    return true;
  }

 private:
  RipeMachine m_;
  L4PtrRuntime rt_;
};

std::unique_ptr<RipeDefense> MakeDefense(const RipeMachine& m) {
  return std::make_unique<L4PtrRipeDefense>(m);
}

}  // namespace

const SchemeDescriptor& L4PtrPolicy::Descriptor() {
  static const SchemeDescriptor* desc = [] {
    auto* d = new SchemeDescriptor();
    d->kind = PolicyKind::kL4Ptr;
    d->id = "l4ptr";
    d->name = "L4Ptr";
    // Not in the paper's four-scheme suite: figure stdout stays comparable
    // with the paper by default; opt in with --policies=...,l4ptr or =all.
    d->in_paper_suite = false;
    d->metadata_surface = "pointer tag only (both bounds in upper 32 bits)";
    d->caps.detects_oob_write = true;
    d->caps.detects_oob_read = true;
    d->caps.detects_underflow = true;
    // No in-memory metadata -> nothing for kMetadataFlip to corrupt, and no
    // footer indirection to back a boundless overlay.
    d->ripe_expected_prevented = 8;
    d->make_ripe_defense = &MakeDefense;
    return d;
  }();
  return *desc;
}

}  // namespace sgxb
