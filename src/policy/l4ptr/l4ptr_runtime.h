// L4 Pointer-style runtime: both bounds live in the unused upper 32 bits of
// the pointer itself, so a bounds check needs NO metadata load at all.
//
// This is the fifth scheme plugged into the policy registry - implemented
// entirely under src/policy/l4ptr/ to prove the registry's "one directory,
// one registration line" claim. Encoding of the upper-32-bit tag:
//
//     [ e:5 | ub_g:27 ]      UB = ub_g * 32   (27-bit granule count x 32 B
//                                              spans the full 4 GiB space)
//                            size = 2^e       (e in [5, 31])
//                            LB = UB - 2^e
//
// Every allocation is padded to a power of two (>= 32 B) and based on a
// 32-byte boundary, so UB is granule-aligned and LB lands exactly on the
// object base. The trade against SGXBounds (SS3.2): checks lose the LB
// footer load (the metadata access that dominates SGXBounds' overhead) but
// pointer arithmetic must preserve a wider tag (3 ALU vs 2) and every
// object pays power-of-two internal fragmentation. A zero tag means an
// untagged pointer of uninstrumented origin and passes unchecked, exactly
// like SGXBounds' UB == 0 convention.
//
// Violations raise TrapKind::kPolicyViolation (the generic trap kind for
// registry-plugged schemes); there is no boundless-memory mode and no
// in-memory metadata for fault campaigns to flip.

#ifndef SGXBOUNDS_SRC_POLICY_L4PTR_L4PTR_RUNTIME_H_
#define SGXBOUNDS_SRC_POLICY_L4PTR_L4PTR_RUNTIME_H_

#include <bit>
#include <cstdint>
#include <cstring>

#include "src/enclave/enclave.h"
#include "src/ir/scheme_rt.h"
#include "src/runtime/heap.h"
#include "src/runtime/stack.h"
#include "src/sgxbounds/metadata.h"

namespace sgxb {

// A tagged l4ptr pointer: [e:5 | ub_g:27 | addr:32].
using L4Ptr = uint64_t;

inline constexpr uint32_t kL4Granule = 32;

inline constexpr uint32_t L4Addr(L4Ptr p) { return static_cast<uint32_t>(p); }
inline constexpr uint32_t L4TagOf(L4Ptr p) { return static_cast<uint32_t>(p >> 32); }
inline constexpr uint32_t L4Ub(uint32_t tag) { return (tag & 0x07ffffffu) * kL4Granule; }
inline constexpr uint32_t L4SizeLog2(uint32_t tag) { return tag >> 27; }
inline constexpr uint32_t L4Lb(uint32_t tag) {
  return L4Ub(tag) - (1u << L4SizeLog2(tag));
}

inline constexpr L4Ptr L4Encode(uint32_t addr, uint32_t ub, uint32_t log2_size) {
  const uint64_t tag = (static_cast<uint64_t>(log2_size) << 27) |
                       (static_cast<uint64_t>(ub) / kL4Granule);
  return (tag << 32) | addr;
}

// Tag-preserving pointer arithmetic (the uop kMaskPtr form works unchanged:
// upper 32 bits from the base, low 32 from the arithmetic result).
inline constexpr L4Ptr L4Add(L4Ptr p, int64_t delta) {
  return (p & 0xffffffff00000000ULL) |
         ((p + static_cast<uint64_t>(delta)) & 0xffffffffULL);
}

// Bytes one object of `size` occupies: padded to a power of two >= 32.
inline constexpr uint32_t L4PaddedSize(uint32_t size) {
  return size <= kL4Granule ? kL4Granule : std::bit_ceil(size);
}

struct L4PtrStats {
  uint64_t objects_created = 0;
  uint64_t objects_freed = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;
};

class L4PtrRuntime final : public IrSchemeRuntime {
 public:
  L4PtrRuntime(Enclave* enclave, Heap* heap) : enclave_(enclave), heap_(heap) {}

  // --- Object lifecycle -----------------------------------------------------

  // Tags caller-owned storage at [base, base + L4PaddedSize(size)); base must
  // be 32-byte aligned (stack/bss/data objects carved by the caller).
  L4Ptr SpecifyBounds(Cpu& cpu, uint32_t base, uint32_t size) {
    const uint32_t padded = L4PaddedSize(size);
    cpu.Alu(2);  // compose the tag - pure register arithmetic, no footer write
    ++stats_.objects_created;
    return L4Encode(base, base + padded, Log2(padded));
  }

  L4Ptr Malloc(Cpu& cpu, uint32_t size) {
    const uint32_t padded = L4PaddedSize(size);
    const uint32_t base = heap_->Alloc(cpu, padded, kL4Granule);
    cpu.Alu(2);
    ++stats_.objects_created;
    return L4Encode(base, base + padded, Log2(padded));
  }

  L4Ptr MallocAligned(Cpu& cpu, uint32_t size, uint32_t align) {
    const uint32_t padded = L4PaddedSize(size);
    const uint32_t eff_align =
        align <= kL4Granule ? kL4Granule : std::bit_ceil(align);
    const uint32_t base = heap_->Alloc(cpu, padded, eff_align);
    cpu.Alu(2);
    ++stats_.objects_created;
    return L4Encode(base, base + padded, Log2(padded));
  }

  L4Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem_size) {
    const uint32_t bytes = count * elem_size;
    const L4Ptr p = Malloc(cpu, bytes);
    if (bytes > 0) {
      cpu.MemAccess(L4Addr(p), bytes, AccessClass::kAppStore);
      std::memset(enclave_->space().HostPtr(L4Addr(p)), 0, bytes);
    }
    return p;
  }

  void Free(Cpu& cpu, L4Ptr p) {
    const uint32_t tag = L4TagOf(p);
    cpu.Alu(2);  // decode the base from the tag
    heap_->Free(cpu, tag != 0 ? L4Lb(tag) : L4Addr(p));
    ++stats_.objects_freed;
  }

  // --- Instrumentation primitives --------------------------------------------

  // Pointer arithmetic must keep the 32-bit tag intact while wrapping the
  // low half: one ALU op wider than SGXBounds' masked add (SS3.2).
  L4Ptr PtrAdd(Cpu& cpu, L4Ptr p, int64_t delta) {
    cpu.Alu(3);
    return L4Add(p, delta);
  }

  // Full bounds check: both bounds decode from the tag in registers - no
  // metadata load. 4 ALU (extract addr/tag, decode UB, materialize LB,
  // compare setup) + 1 branch.
  uint32_t CheckAccess(Cpu& cpu, L4Ptr p, uint32_t size, AccessType type) {
    const uint32_t addr = L4Addr(p);
    const uint32_t tag = L4TagOf(p);
    if (tag == 0) {
      return addr;  // untagged: uninstrumented origin, no bounds known
    }
    cpu.Alu(2);
    ++stats_.checks;
    ++cpu.counters().bounds_checks;
    cpu.Alu(2);
    cpu.Branch();
    const uint32_t ub = L4Ub(tag);
    const uint32_t lb = ub - (1u << L4SizeLog2(tag));
    if (addr < lb || static_cast<uint64_t>(addr) + size > ub) {
      Violation(cpu, addr, type);
    }
    return addr;
  }

  // Hoisted range check: verifies [p, p + extent) once; loop bodies then
  // access the span unchecked.
  void CheckRange(Cpu& cpu, L4Ptr p, uint64_t extent_bytes) {
    const uint32_t addr = L4Addr(p);
    const uint32_t tag = L4TagOf(p);
    if (tag == 0) {
      return;
    }
    cpu.Alu(2);
    ++stats_.checks;
    ++cpu.counters().bounds_checks;
    cpu.Alu(2);
    cpu.Branch();
    const uint32_t ub = L4Ub(tag);
    const uint32_t lb = ub - (1u << L4SizeLog2(tag));
    if (addr < lb || static_cast<uint64_t>(addr) + extent_bytes > ub) {
      Violation(cpu, addr, AccessType::kReadWrite);
    }
  }

  // --- IrSchemeRuntime (the IR pipeline's generic scheme hooks) ---------------

  uint64_t IrAlloca(Cpu& cpu, StackAllocator& stack, uint32_t bytes) override {
    const uint32_t base = stack.Alloca(cpu, L4PaddedSize(bytes), kL4Granule);
    return SpecifyBounds(cpu, base, bytes);
  }

  uint64_t IrMalloc(Cpu& cpu, uint32_t bytes) override { return Malloc(cpu, bytes); }

  void IrFree(Cpu& cpu, uint64_t ptr) override { Free(cpu, ptr); }

  void IrCheck(Cpu& cpu, uint64_t ptr, uint32_t bytes, AccessType type) override {
    CheckAccess(cpu, ptr, bytes, type);
  }

  void IrCheckRange(Cpu& cpu, uint64_t ptr, uint64_t extent) override {
    CheckRange(cpu, ptr, extent);
  }

  Enclave* enclave() { return enclave_; }
  const L4PtrStats& stats() const { return stats_; }

 private:
  static uint32_t Log2(uint32_t pow2) {
    return 31u - static_cast<uint32_t>(std::countl_zero(pow2));
  }

  [[noreturn]] void Violation(Cpu& cpu, uint32_t addr, AccessType type) {
    ++stats_.violations;
    ++cpu.counters().bounds_violations;
    throw SimTrap(TrapKind::kPolicyViolation, addr,
                  type == AccessType::kWrite ? "l4ptr: out-of-bounds write"
                                             : "l4ptr: out-of-bounds access");
  }

  Enclave* enclave_;
  Heap* heap_;
  L4PtrStats stats_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_L4PTR_L4PTR_RUNTIME_H_
