// l4ptr IR lowering: the generic scheme pass (kSchemeCheck opcodes, "scheme"
// allocation symbol) with the runtime attached through the interpreter's
// pluggable IrSchemeRuntime hook - no l4ptr-specific opcode exists anywhere
// in src/ir.
//
// Pass placement is the shared check pipeline (src/ir/opt). l4ptr pads
// every allocation to a power of two >= 32 bytes (kL4Granule), so in-field
// elision is legal with a 32-byte floor: a constant offset+size <= 32 from
// an allocation base is inside the padded footprint whenever the first
// access through that base was.

#ifndef SGXBOUNDS_SRC_POLICY_L4PTR_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_L4PTR_IR_LOWERING_H_

#include "src/ir/opt/pipeline.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/l4ptr/l4ptr_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<L4PtrPolicy> {
  static CheckPassStats Apply(L4PtrPolicy& policy, Interpreter& interp,
                              IrFunction& fn, const PolicyOptions& options) {
    const CheckPassStats stats = RunCheckPipeline(
        fn, TaggedSchemeCheckLowering(kL4Granule), CheckConfigFrom(options));
    interp.AttachScheme(&policy.runtime());
    return stats;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_L4PTR_IR_LOWERING_H_
