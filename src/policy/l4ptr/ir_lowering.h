// l4ptr IR lowering: the generic scheme pass (kSchemeCheck opcodes, "scheme"
// allocation symbol) with the runtime attached through the interpreter's
// pluggable IrSchemeRuntime hook - no l4ptr-specific opcode exists anywhere
// in src/ir.
//
// The pass placement logic (per-access checks, SS4.4 elision and hoisting)
// is shared with SGXBounds via RunTaggedPtrPassImpl; only the emitted
// opcodes and the runtime behind them differ.

#ifndef SGXBOUNDS_SRC_POLICY_L4PTR_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_L4PTR_IR_LOWERING_H_

#include "src/ir/passes.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/l4ptr/l4ptr_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<L4PtrPolicy> {
  static void Apply(L4PtrPolicy& policy, Interpreter& interp, IrFunction& fn,
                    const PolicyOptions& options) {
    SgxPassOptions opts;
    opts.elide_safe = options.opt_safe_elision;
    opts.hoist_loops = options.opt_hoist_checks;
    RunSchemePass(fn, opts);
    interp.AttachScheme(&policy.runtime());
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_L4PTR_IR_LOWERING_H_
