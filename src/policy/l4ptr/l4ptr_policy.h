// l4ptr as a workload policy: both bounds ride in the pointer's upper 32
// bits, so checks are register-only (no LB footer load) while pointer
// arithmetic and allocation pay for the power-of-two encoding. The SS4.4
// optimizations map exactly as for SGXBounds: LoadField/StoreField elide
// provably-safe checks, OpenSpan hoists one range check over a loop.
//
// The whole scheme lives in this directory; the rest of the repo sees it
// only through the registry (scheme_list.h is the single registration line).

#ifndef SGXBOUNDS_SRC_POLICY_L4PTR_L4PTR_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_L4PTR_L4PTR_POLICY_H_

#include <cstring>

#include "src/fault/fault.h"
#include "src/policy/l4ptr/l4ptr_runtime.h"
#include "src/policy/policy.h"
#include "src/policy/registry.h"

namespace sgxb {

class L4PtrPolicy {
 public:
  static constexpr PolicyKind kKind = PolicyKind::kL4Ptr;

  // Registry entry (defined in this scheme's scheme.cc).
  static const SchemeDescriptor& Descriptor();

  using Ptr = L4Ptr;

  L4PtrPolicy(Enclave* enclave, Heap* heap, const PolicyOptions& options)
      : enclave_(enclave), rt_(enclave, heap), options_(options) {}

  Ptr Malloc(Cpu& cpu, uint32_t size) { return rt_.Malloc(cpu, size); }

  Ptr AlignedAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
    return rt_.MallocAligned(cpu, size, align);
  }
  Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem) { return rt_.Calloc(cpu, count, elem); }
  void Free(Cpu& cpu, Ptr p) { rt_.Free(cpu, p); }

  Ptr Offset(Cpu& cpu, Ptr p, int64_t delta) { return rt_.PtrAdd(cpu, p, delta); }

  uint32_t AddrOf(Ptr p) const { return L4Addr(p); }
  static Ptr FromAddr(uint32_t addr) { return addr; }  // untagged: no bounds

  template <typename T>
  T Load(Cpu& cpu, Ptr p) {
    const uint32_t addr = rt_.CheckAccess(cpu, p, sizeof(T), AccessType::kRead);
    return enclave_->Load<T>(cpu, addr);
  }

  template <typename T>
  void Store(Cpu& cpu, Ptr p, T value) {
    const uint32_t addr = rt_.CheckAccess(cpu, p, sizeof(T), AccessType::kWrite);
    enclave_->Store<T>(cpu, addr, value);
  }

  // Checked access at a dynamic offset: tag-preserving add folds into
  // addressing (one ALU op), then the register-only check.
  template <typename T>
  T LoadAt(Cpu& cpu, Ptr p, uint64_t off) {
    cpu.Alu(1);
    return Load<T>(cpu, L4Add(p, static_cast<int64_t>(off)));
  }

  template <typename T>
  void StoreAt(Cpu& cpu, Ptr p, uint64_t off, T value) {
    cpu.Alu(1);
    Store<T>(cpu, L4Add(p, static_cast<int64_t>(off)), value);
  }

  // Provably-safe field access (SS4.4 "safe memory accesses"): elision emits
  // a raw access on the untagged address.
  template <typename T>
  T LoadField(Cpu& cpu, Ptr p, uint32_t off) {
    if (options_.opt_safe_elision) {
      cpu.Alu(1);
      return enclave_->Load<T>(cpu, L4Addr(p) + off);
    }
    return Load<T>(cpu, L4Add(p, off));
  }

  template <typename T>
  void StoreField(Cpu& cpu, Ptr p, uint32_t off, T value) {
    if (options_.opt_safe_elision) {
      cpu.Alu(1);
      enclave_->Store<T>(cpu, L4Addr(p) + off, value);
      return;
    }
    Store<T>(cpu, L4Add(p, off), value);
  }

  // Pointer-in-memory: the tag rides in the 64-bit slot, so a plain 8-byte
  // load/store moves pointer and bounds atomically - same property SGXBounds
  // gets from its tagged representation (SS4.1).
  Ptr LoadPtr(Cpu& cpu, Ptr slot) {
    const uint32_t addr = rt_.CheckAccess(cpu, slot, kPtrSlotBytes, AccessType::kRead);
    return enclave_->Load<uint64_t>(cpu, addr);
  }

  void StorePtr(Cpu& cpu, Ptr slot, Ptr value) {
    const uint32_t addr = rt_.CheckAccess(cpu, slot, kPtrSlotBytes, AccessType::kWrite);
    enclave_->Store<uint64_t>(cpu, addr, value);
  }

  // Loop span (SS4.4 check hoisting): one range check, unchecked body.
  class Span {
   public:
    Span(L4PtrPolicy* policy, Ptr base, bool hoisted)
        : policy_(policy), base_(base), hoisted_(hoisted) {}

    template <typename T>
    T Load(Cpu& cpu, uint64_t byte_off) {
      if (hoisted_) {
        cpu.Alu(1);
        return policy_->enclave_->Load<T>(cpu,
                                          L4Addr(base_) + static_cast<uint32_t>(byte_off));
      }
      return policy_->Load<T>(cpu, L4Add(base_, static_cast<int64_t>(byte_off)));
    }

    template <typename T>
    void Store(Cpu& cpu, uint64_t byte_off, T value) {
      if (hoisted_) {
        cpu.Alu(1);
        policy_->enclave_->Store<T>(cpu, L4Addr(base_) + static_cast<uint32_t>(byte_off),
                                    value);
        return;
      }
      policy_->Store<T>(cpu, L4Add(base_, static_cast<int64_t>(byte_off)), value);
    }

   private:
    L4PtrPolicy* policy_;
    Ptr base_;
    bool hoisted_;
  };

  Span OpenSpan(Cpu& cpu, Ptr base, uint64_t extent_bytes) {
    if (options_.opt_hoist_checks) {
      rt_.CheckRange(cpu, base, extent_bytes);
      return Span(this, base, /*hoisted=*/true);
    }
    return Span(this, base, /*hoisted=*/false);
  }

  void Memcpy(Cpu& cpu, Ptr dst, Ptr src, uint32_t n) {
    if (n == 0) {
      return;
    }
    // Instrumented-libc semantics: check both args once, then bulk move.
    const uint32_t src_addr = rt_.CheckAccess(cpu, src, n, AccessType::kRead);
    const uint32_t dst_addr = rt_.CheckAccess(cpu, dst, n, AccessType::kWrite);
    cpu.MemAccess(src_addr, n, AccessClass::kAppLoad);
    cpu.MemAccess(dst_addr, n, AccessClass::kAppStore);
    std::memmove(enclave_->space().HostPtr(dst_addr), enclave_->space().HostPtr(src_addr), n);
  }

  void Memset(Cpu& cpu, Ptr dst, uint8_t value, uint32_t n) {
    if (n == 0) {
      return;
    }
    const uint32_t dst_addr = rt_.CheckAccess(cpu, dst, n, AccessType::kWrite);
    cpu.MemAccess(dst_addr, n, AccessClass::kAppStore);
    std::memset(enclave_->space().HostPtr(dst_addr), value, n);
  }

  // No in-memory metadata to corrupt: bounds live in pointer registers, so
  // kMetadataFlip events are skipped (the descriptor claims no corruptor).
  void AttachFaults(FaultInjector* faults) { (void)faults; }

  Enclave* enclave() { return enclave_; }
  L4PtrRuntime& runtime() { return rt_; }

 private:
  Enclave* enclave_;
  L4PtrRuntime rt_;
  PolicyOptions options_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_L4PTR_L4PTR_POLICY_H_
