// Memory-safety policies: the four "compilations" of every workload.
//
// The paper compiles each benchmark four ways: plain SGX (native), with
// AddressSanitizer, with Intel MPX, and with SGXBounds. In this reproduction
// each workload is a template over a Policy class that supplies pointer
// representation, allocation, checked access, pointer-in-memory operations
// and loop-span access - the observable effects of the four instrumentations.
//
// The Policy concept (duck-typed; see native_policy.h for the reference):
//
//   using Ptr = ...;                  // pointer representation
//   static constexpr PolicyKind kKind;
//   Ptr   Malloc(Cpu&, uint32_t size);
//   Ptr   Calloc(Cpu&, uint32_t count, uint32_t elem);
//   void  Free(Cpu&, Ptr);
//   Ptr   Offset(Cpu&, Ptr, int64_t delta);          // pointer arithmetic
//   uint32_t AddrOf(Ptr) const;                      // raw enclave address
//   T     Load<T>(Cpu&, Ptr);                        // checked access
//   void  Store<T>(Cpu&, Ptr, T);
//   T     LoadField<T>(Cpu&, Ptr, uint32_t off);     // provably-safe access
//   void  StoreField<T>(Cpu&, Ptr, uint32_t off, T); //   (SS4.4 elision point)
//   Ptr   LoadPtr(Cpu&, Ptr slot);                   // pointer-in-memory
//   void  StorePtr(Cpu&, Ptr slot, Ptr value);       //   (MPX bndldx/bndstx point)
//   Span  OpenSpan(Cpu&, Ptr base, uint64_t extent); // monotone-loop access
//                                                    //   (SS4.4 hoisting point)
//   void  Memcpy/Memset(Cpu&, ...);                  // libc-wrapper point

#ifndef SGXBOUNDS_SRC_POLICY_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_POLICY_H_

#include <cstdint>

#include "src/common/ir_engine.h"
#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {

// Numeric values are trace-format-stable (TraceHeader.policy stores them);
// new schemes append, existing values never move.
enum class PolicyKind : uint8_t { kNative, kAsan, kMpx, kSgxBounds, kL4Ptr, kShadow };

// Number of registered PolicyKind values (kept in sync with the enum; the
// scheme registry in registry.h statically checks every kind is described).
inline constexpr uint32_t kPolicyKindCount = 6;

// Display name from the scheme registry ("SGX", "ASan", "MPX", ...).
const char* PolicyName(PolicyKind kind);

// Pointer slots in guest memory are 8 bytes for every policy (x86-64 ABI).
inline constexpr uint32_t kPtrSlotBytes = 8;

// Check-optimization switches, consumed by the scheme-generic pass pipeline
// (src/ir/opt/pipeline.h). Each scheme declares which passes are legal for
// its bounds encoding; a flag only takes effect where the scheme supports
// it, so the paper's setup (SS4.4 optimizations on SGXBounds, nothing on
// ASan/MPX) is preserved at these defaults.
struct PolicyOptions {
  OobPolicy oob = OobPolicy::kFailFast;
  // The paper's SS4.4 pair (default on, matching the published results).
  bool opt_safe_elision = true;
  bool opt_hoist_checks = true;
  // ShadowBound-style whole-program passes (default off: enabling them
  // changes instrumentation, and the paper-four goldens pin the defaults).
  bool opt_redundant_elision = false;
  bool opt_pattern_loops = false;
  bool opt_infield_elision = false;
  // Execution engine for interpreter-driven workload bodies (the "ir" suite).
  // kDefault follows the process-wide --ir_engine selection; simulated
  // results are engine-invariant by construction.
  IrEngine ir_engine = IrEngine::kDefault;
  // Boundless-memory degradation mode at overlay capacity (SGXBounds with
  // oob == kBoundless only): silently recycle the LRU chunk, or trap loudly
  // so a recovery layer can contain the request.
  OverlayExhaustPolicy overlay_exhaust = OverlayExhaustPolicy::kEvictOldest;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_POLICY_H_
