// IR-lowering customization point of the scheme registry.
//
// The "ir" suite builds a mini-IR function and asks the scheme to instrument
// it - the analog of the paper's LLVM pass. Each scheme specializes this
// trait next to its policy (src/policy/<scheme>/ir_lowering.h, aggregated by
// scheme_ir.h); the primary template is the uninstrumented default (native).

#ifndef SGXBOUNDS_SRC_POLICY_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_IR_LOWERING_H_

#include "src/ir/interp.h"
#include "src/policy/policy.h"

namespace sgxb {

template <typename P>
struct SchemeIrLowering {
  // Runs the scheme's instrumentation pass over `fn` and attaches the
  // scheme's runtime to `interp`. Default: leave the function bare.
  static void Apply(P& policy, Interpreter& interp, IrFunction& fn,
                    const PolicyOptions& options) {
    (void)policy;
    (void)interp;
    (void)fn;
    (void)options;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_IR_LOWERING_H_
