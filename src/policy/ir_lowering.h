// IR-lowering customization point of the scheme registry.
//
// The "ir" suite builds a mini-IR function and asks the scheme to instrument
// it - the analog of the paper's LLVM pass. Each scheme specializes this
// trait next to its policy (src/policy/<scheme>/ir_lowering.h, aggregated by
// scheme_ir.h); the primary template is the uninstrumented default (native).
//
// Apply returns the check-pipeline statistics (checks inserted/elided/
// hoisted per pass) so the harness can surface pass effectiveness in
// run_workload --selftime and the bench --json rows.

#ifndef SGXBOUNDS_SRC_POLICY_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_IR_LOWERING_H_

#include "src/ir/interp.h"
#include "src/ir/opt/pipeline.h"
#include "src/policy/policy.h"

namespace sgxb {

// PolicyOptions -> pass-pipeline toggles (shared by every scheme's lowering).
inline CheckPassConfig CheckConfigFrom(const PolicyOptions& options) {
  CheckPassConfig config;
  config.elide_safe = options.opt_safe_elision;
  config.hoist_loops = options.opt_hoist_checks;
  config.elide_redundant = options.opt_redundant_elision;
  config.pattern_loops = options.opt_pattern_loops;
  config.elide_infield = options.opt_infield_elision;
  return config;
}

template <typename P>
struct SchemeIrLowering {
  // Runs the scheme's instrumentation pass over `fn` and attaches the
  // scheme's runtime to `interp`. Default: leave the function bare.
  static CheckPassStats Apply(P& policy, Interpreter& interp, IrFunction& fn,
                              const PolicyOptions& options) {
    (void)policy;
    (void)interp;
    (void)fn;
    (void)options;
    return {};
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_IR_LOWERING_H_
