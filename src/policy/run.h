// Experiment harness: build a machine, pick a policy, run a workload body,
// collect the paper's metrics (cycles, peak virtual memory, counters, crash).
//
// Usage:
//   MachineSpec spec;
//   spec.threads = 8;
//   RunResult r = RunPolicyKind(PolicyKind::kSgxBounds, spec, PolicyOptions{},
//                               [](auto& env) { MyKernel(env); });
//
// The body receives Env<P>& where P is the concrete policy class; workload
// kernels are templates over that type, which is the moral equivalent of
// compiling the same C source under four different instrumentations.

#ifndef SGXBOUNDS_SRC_POLICY_RUN_H_
#define SGXBOUNDS_SRC_POLICY_RUN_H_

#include <optional>
#include <string>

#include "src/common/rng.h"
#include "src/fault/fault.h"
#include "src/ir/opt/pipeline.h"
#include "src/policy/recovery.h"
#include "src/policy/scheme_list.h"
#include "src/runtime/thread_pool.h"

namespace sgxb {

struct MachineSpec {
  bool enclave_mode = true;
  uint64_t epc_bytes = 94 * kMiB;
  uint64_t space_bytes = 4 * kGiB;
  // 3 GiB: large enough for every workload's data; the remaining ~1 GiB of
  // address space is what Intel MPX's on-demand 4 MiB bounds tables compete
  // for - pointer-heavy workloads with >~250 MiB of pointer-bearing heap
  // exhaust it and die with kOutOfMemory, reproducing the paper's MPX
  // crashes (dedup, SQLite, astar, mcf, xalanc).
  uint64_t heap_reserve = 3 * kGiB;
  uint32_t threads = 1;
  uint64_t seed = 42;
  // Cost table for the simulated machine. Defaults leave every axis at the
  // calibrated values with enclave transitions off; call
  // costs.EnableTransitions() to charge ECALL/OCALL world switches.
  CostModel costs;
  // Optional: record this run's event stream (src/trace). The recorder must
  // outlive the run; the harness calls BeginRun/Finalize around the body.
  TraceRecorder* trace = nullptr;
  // Optional: a deterministic fault campaign (src/fault) armed on the
  // enclave before the body runs. The plan must outlive the run.
  const FaultPlan* faults = nullptr;
  // Trap-recovery configuration for env.Serve() request containment;
  // disabled by default (traps propagate as before).
  RecoveryConfig recovery;
};

struct RunResult {
  PolicyKind kind = PolicyKind::kNative;
  uint64_t cycles = 0;
  uint64_t peak_vm_bytes = 0;
  PerfCounters counters;
  bool crashed = false;
  TrapKind trap = TrapKind::kSegFault;
  std::string trap_message;
  // MPX-specific (Table 3).
  uint32_t mpx_bt_count = 0;
  // Check-pipeline statistics accumulated over every IR function the body
  // instrumented (zero for non-IR workloads).
  CheckPassStats pass_stats;
  // Fault campaign + recovery accounting (zero when neither was configured).
  FaultStats fault_stats;
  RecoveryStats recovery_stats;

  double CyclesRatioOver(const RunResult& base) const {
    return base.cycles == 0 ? 0.0 : static_cast<double>(cycles) / base.cycles;
  }
  double VmRatioOver(const RunResult& base) const {
    return base.peak_vm_bytes == 0
               ? 0.0
               : static_cast<double>(peak_vm_bytes) / base.peak_vm_bytes;
  }
};

template <typename P>
struct Env {
  Enclave& enclave;
  Heap& heap;
  P& policy;
  Cpu& cpu;
  uint32_t threads;
  Rng rng;
  // The options this run was configured with; interpreter-driven workload
  // bodies read ir_engine from here.
  PolicyOptions options;
  // Trap-recovery control (always present; pass-through when disabled).
  RecoveryControl* recovery = nullptr;
  // Armed fault injector, when the spec carried a FaultPlan (null otherwise).
  // Service harnesses (src/farm) use it to land shard-scoped injections at
  // request positions via InjectNow.
  FaultInjector* faults = nullptr;
  // Check-pipeline statistics; IR-driven bodies accumulate the stats returned
  // by SchemeIrLowering<P>::Apply here and the harness copies them into
  // RunResult.pass_stats.
  CheckPassStats pass_stats;

  using Ptr = typename P::Ptr;

  // Convenience: run a parallel region with this env's enclave.
  template <typename Body>
  ParallelResult Parallel(const Body& body) {
    return RunParallel(enclave, cpu, threads, body);
  }

  // Runs `fn` as one contained request under the recovery policy: true when
  // served, false when the request trapped and was dropped. With recovery
  // disabled (the default spec), traps propagate unchanged.
  template <typename Fn>
  bool Serve(Fn&& fn) {
    return recovery->Serve(cpu, std::forward<Fn>(fn));
  }
};

template <typename P, typename Fn>
RunResult RunWithPolicy(const MachineSpec& spec, const PolicyOptions& options, Fn&& fn) {
  EnclaveConfig cfg;
  cfg.sim.enclave_mode = spec.enclave_mode;
  cfg.sim.epc_bytes = spec.epc_bytes;
  cfg.sim.costs = spec.costs;
  cfg.space_bytes = spec.space_bytes;
  Enclave enclave(cfg);
  if (spec.trace != nullptr) {
    TraceHeader machine;
    machine.policy = static_cast<uint8_t>(P::kKind);
    machine.enclave_mode = spec.enclave_mode ? 1 : 0;
    machine.threads = spec.threads;
    machine.seed = spec.seed;
    machine.space_bytes = spec.space_bytes;
    machine.heap_reserve = spec.heap_reserve;
    const SimConfig& sim = enclave.memsys().config();
    machine.l1_bytes = sim.l1_bytes;
    machine.l1_ways = sim.l1_ways;
    machine.l2_bytes = sim.l2_bytes;
    machine.l2_ways = sim.l2_ways;
    machine.l3_bytes = sim.l3_bytes;
    machine.l3_ways = sim.l3_ways;
    machine.epc_bytes = sim.epc_bytes;
    machine.costs = sim.costs;
    if (sim.costs.TransitionsEnabled()) {
      machine.version = kTraceVersionTransitions;
    }
    spec.trace->BeginRun(machine);
    enclave.AttachTrace(spec.trace);
  }
  Heap heap(&enclave, spec.heap_reserve);

  // Fault campaign + recovery wiring. The injector arms the enclave's access
  // tap before the policy is constructed so even runtime-setup accesses
  // advance the deterministic access counter.
  // An empty (but non-null) plan still arms the injector: the farm needs one
  // for shard-scoped InjectNow events even when no per-enclave triggers are
  // scheduled. The empty injector's polls never fire, so simulated results
  // are untouched.
  std::optional<FaultInjector> injector;
  if (spec.faults != nullptr) {
    injector.emplace(*spec.faults);
    injector->Arm(&enclave, &heap);
  }
  RecoveryControl recovery(spec.recovery);

  RunResult result;
  result.kind = P::kKind;
  try {
    P policy(&enclave, &heap, options);
    if (injector.has_value()) {
      policy.AttachFaults(&*injector);
    }
    Env<P> env{enclave, heap, policy, enclave.main_cpu(), spec.threads, Rng(spec.seed),
               options, &recovery, injector.has_value() ? &*injector : nullptr};
    fn(env);
    result.pass_stats = env.pass_stats;
    // Scheme-specific RunResult metrics (e.g. MPX's bounds-table count) are
    // collected through an optional policy hook instead of naming schemes.
    if constexpr (requires { policy.CollectRunMetrics(result); }) {
      policy.CollectRunMetrics(result);
    }
  } catch (const SimTrap& trap) {
    result.crashed = true;
    result.trap = trap.kind();
    result.trap_message = trap.what();
  }
  if (injector.has_value()) {
    result.fault_stats = injector->stats();
    injector->Disarm();
  }
  result.recovery_stats = recovery.stats();
  result.cycles = enclave.main_cpu().cycles();
  result.peak_vm_bytes = enclave.PeakVirtualBytes();
  result.counters = enclave.TotalCounters();
  if (spec.trace != nullptr) {
    TraceRecorder::Outcome outcome;
    outcome.live_cycles = result.cycles;
    outcome.peak_vm_bytes = result.peak_vm_bytes;
    outcome.mpx_bt_count = result.mpx_bt_count;
    outcome.crashed = result.crashed;
    outcome.trap_kind = static_cast<uint8_t>(result.trap);
    outcome.trap_message = result.trap_message;
    spec.trace->Finalize(outcome);
    enclave.AttachTrace(nullptr);
  }
  return result;
}

// Dynamic kind -> concrete policy type: fold over the registered scheme
// list instead of a switch, so a new scheme needs no edit here.
template <typename Fn>
RunResult RunPolicyKind(PolicyKind kind, const MachineSpec& spec, const PolicyOptions& options,
                        Fn&& fn) {
  RunResult result;
  const bool found = SchemePolicies::ForEach([&]<typename P>() {
    if (P::kKind != kind) {
      return false;
    }
    result = RunWithPolicy<P>(spec, options, fn);
    return true;
  });
  (void)found;
  return result;
}

// The paper's four default schemes in presentation order (Figure 7 et al.);
// plugged-in schemes are opt-in via --policies (registry.h PaperSchemes()).
inline constexpr PolicyKind kAllPolicies[] = {PolicyKind::kNative, PolicyKind::kMpx,
                                              PolicyKind::kAsan, PolicyKind::kSgxBounds};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_RUN_H_
