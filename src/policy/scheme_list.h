// THE single registration point of the scheme registry.
//
// Adding a scheme: append its PolicyKind value (policy.h), create
// src/policy/<scheme>/ with the policy class + a scheme.cc defining
// Descriptor(), then add the type to SchemePolicies below. Nothing else in
// the repo changes - the registry (policy.cc), the run harness (run.h), the
// IR suite, the bench drivers, the trace tool, RIPE and the fault campaigns
// all enumerate from here.

#ifndef SGXBOUNDS_SRC_POLICY_SCHEME_LIST_H_
#define SGXBOUNDS_SRC_POLICY_SCHEME_LIST_H_

#include "src/policy/asan/asan_policy.h"
#include "src/policy/l4ptr/l4ptr_policy.h"
#include "src/policy/mpx/mpx_policy.h"
#include "src/policy/native/native_policy.h"
#include "src/policy/sgxbounds/sgxbounds_policy.h"
#include "src/policy/shadow/shadow_policy.h"

namespace sgxb {

// Compile-time list of scheme policy types. ForEach visits each type in
// order until the visitor returns true (found/stop), mirroring how the
// runtime descriptor table is ordered.
template <typename... Ps>
struct SchemeTypes {
  template <typename Fn>
  static bool ForEach(Fn&& fn) {
    return (fn.template operator()<Ps>() || ...);
  }

  static constexpr size_t kCount = sizeof...(Ps);
};

// Registration order = the paper's presentation order (native baseline
// first, then MPX, ASan, SGXBounds), then plugged-in schemes.
using SchemePolicies =
    SchemeTypes<NativePolicy, MpxPolicy, AsanPolicy, SgxBoundsPolicy, L4PtrPolicy,
                ShadowPolicy>;

static_assert(SchemePolicies::kCount == kPolicyKindCount,
              "every PolicyKind value needs a registered scheme");

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SCHEME_LIST_H_
