// Registry entry + RIPE participation for AddressSanitizer.

#include <cstring>

#include "src/policy/asan/asan_policy.h"
#include "src/ripe/defense.h"

namespace sgxb {
namespace {

// Shadow-memory checks on instrumented stores plus libc interceptors; the
// carve layout leaves a 32-byte redzone gap after every stack/global object
// (poisoned by RegisterObject), which is how all 8 inter-object attacks die.
class AsanRipeDefense final : public RipeDefense {
 public:
  explicit AsanRipeDefense(const RipeMachine& m)
      : m_(m), rt_(m.enclave, m.heap) {}

  RipeObj AllocateHeap(Cpu& cpu, uint32_t size) override {
    RipeObj obj;
    obj.size = size;
    obj.addr = rt_.Malloc(cpu, size);
    return obj;
  }

  void RegisterNonHeap(Cpu& cpu, RipeObj& obj) override {
    rt_.RegisterObject(cpu, obj.addr, obj.size, AsanRuntime::kShadowGlobalRedzone);
  }

  // ASan's stack/global instrumentation separates objects with redzones; the
  // extra 32 bytes reproduce that gap.
  uint32_t CarveFootprint(uint32_t size) const override { return size + 32; }

  bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) override {
    rt_.CheckAccess(cpu, obj.addr + offset, 1, /*is_write=*/true);
    m_.enclave->Store<uint8_t>(cpu, obj.addr + offset, value);
    return true;
  }

  bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                    uint32_t n) override {
    // The memcpy interceptor checks the whole range; throws on overflow.
    rt_.CheckAccess(cpu, obj.addr, n, /*is_write=*/true);
    cpu.MemAccess(obj.addr, n, AccessClass::kAppStore);
    std::memcpy(m_.enclave->space().HostPtr(obj.addr), payload, n);
    return true;
  }

 private:
  RipeMachine m_;
  AsanRuntime rt_;
};

std::unique_ptr<RipeDefense> MakeDefense(const RipeMachine& m) {
  return std::make_unique<AsanRipeDefense>(m);
}

}  // namespace

const SchemeDescriptor& AsanPolicy::Descriptor() {
  static const SchemeDescriptor* desc = [] {
    auto* d = new SchemeDescriptor();
    d->kind = PolicyKind::kAsan;
    d->id = "asan";
    d->name = "ASan";
    d->in_paper_suite = true;
    d->metadata_surface = "shadow memory (1/8 of address space) + redzones";
    d->caps.detects_oob_write = true;
    d->caps.detects_oob_read = true;
    d->caps.detects_underflow = true;
    d->caps.detects_uaf = true;  // quarantined frees keep the region poisoned
    d->caps.has_metadata_corruptor = true;
    d->ripe_expected_prevented = 8;
    d->make_ripe_defense = &MakeDefense;
    return d;
  }();
  return *desc;
}

}  // namespace sgxb
