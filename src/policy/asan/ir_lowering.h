// ASan IR lowering: shadow-check instrumentation (kAsanCheck opcodes).

#ifndef SGXBOUNDS_SRC_POLICY_ASAN_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_ASAN_IR_LOWERING_H_

#include "src/ir/passes.h"
#include "src/policy/asan/asan_policy.h"
#include "src/policy/ir_lowering.h"

namespace sgxb {

template <>
struct SchemeIrLowering<AsanPolicy> {
  static void Apply(AsanPolicy& policy, Interpreter& interp, IrFunction& fn,
                    const PolicyOptions& options) {
    (void)options;
    RunAsanPass(fn);
    interp.AttachAsan(&policy.runtime());
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_ASAN_IR_LOWERING_H_
