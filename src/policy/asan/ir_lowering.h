// ASan IR lowering: shadow-check instrumentation (kAsanCheck opcodes)
// through the scheme-generic check pipeline. ASan's lowering checks every
// access unconditionally (matching the paper's baseline tooling); only
// redundant-check elimination is legal on top, and it defaults off.

#ifndef SGXBOUNDS_SRC_POLICY_ASAN_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_ASAN_IR_LOWERING_H_

#include "src/ir/opt/pipeline.h"
#include "src/policy/asan/asan_policy.h"
#include "src/policy/ir_lowering.h"

namespace sgxb {

template <>
struct SchemeIrLowering<AsanPolicy> {
  static CheckPassStats Apply(AsanPolicy& policy, Interpreter& interp,
                              IrFunction& fn, const PolicyOptions& options) {
    const CheckPassStats stats =
        RunCheckPipeline(fn, AsanCheckLowering(), CheckConfigFrom(options));
    interp.AttachAsan(&policy.runtime());
    return stats;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_ASAN_IR_LOWERING_H_
