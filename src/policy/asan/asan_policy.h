// AddressSanitizer as a workload policy: raw pointers, shadow-memory check
// before every access, redzone-padded allocation, quarantined frees. Spans
// cannot hoist shadow checks (there is no per-object bound to compare
// against), so loop bodies pay the per-access shadow load - the locality
// cost the paper measures on matrixmul (SS6.4).

#ifndef SGXBOUNDS_SRC_POLICY_ASAN_ASAN_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_ASAN_ASAN_POLICY_H_

#include "src/asan/asan_runtime.h"
#include "src/fault/fault.h"
#include "src/policy/policy.h"
#include "src/policy/registry.h"

namespace sgxb {

class AsanPolicy {
 public:
  static constexpr PolicyKind kKind = PolicyKind::kAsan;

  // Registry entry (defined in this scheme's scheme.cc).
  static const SchemeDescriptor& Descriptor();

  struct Ptr {
    uint32_t addr = 0;
  };

  AsanPolicy(Enclave* enclave, Heap* heap, const PolicyOptions& options)
      : enclave_(enclave), rt_(enclave, heap) {
    (void)options;
  }

  Ptr Malloc(Cpu& cpu, uint32_t size) { return Ptr{rt_.Malloc(cpu, size)}; }

  // ASan's interceptor serves aligned requests from the redzone allocator;
  // alignment beyond the redzone granularity is not preserved (matches the
  // interceptor's behaviour for pool allocators).
  Ptr AlignedAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
    (void)align;
    return Ptr{rt_.Malloc(cpu, size)};
  }

  Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem) {
    const uint64_t total = static_cast<uint64_t>(count) * elem;
    const Ptr p = Malloc(cpu, static_cast<uint32_t>(total));
    std::memset(enclave_->space().HostPtr(p.addr), 0, total);
    cpu.MemAccess(p.addr, static_cast<uint32_t>(total), AccessClass::kAppStore);
    return p;
  }

  void Free(Cpu& cpu, Ptr p) { rt_.Free(cpu, p.addr); }

  Ptr Offset(Cpu& cpu, Ptr p, int64_t delta) {
    cpu.Alu(1);
    return Ptr{static_cast<uint32_t>(p.addr + delta)};
  }

  uint32_t AddrOf(Ptr p) const { return p.addr; }
  static Ptr FromAddr(uint32_t addr) { return Ptr{addr}; }

  template <typename T>
  T Load(Cpu& cpu, Ptr p) {
    rt_.CheckAccess(cpu, p.addr, sizeof(T), /*is_write=*/false);
    return enclave_->Load<T>(cpu, p.addr);
  }

  template <typename T>
  void Store(Cpu& cpu, Ptr p, T value) {
    rt_.CheckAccess(cpu, p.addr, sizeof(T), /*is_write=*/true);
    enclave_->Store<T>(cpu, p.addr, value);
  }

  // Checked access at a dynamic offset: shadow check + load.
  template <typename T>
  T LoadAt(Cpu& cpu, Ptr p, uint64_t off) {
    cpu.Alu(1);
    return Load<T>(cpu, Ptr{p.addr + static_cast<uint32_t>(off)});
  }

  template <typename T>
  void StoreAt(Cpu& cpu, Ptr p, uint64_t off, T value) {
    cpu.Alu(1);
    Store<T>(cpu, Ptr{p.addr + static_cast<uint32_t>(off)}, value);
  }

  // ASan instruments field accesses too (it has no static in-bounds proof for
  // heap objects), so these are full checked accesses.
  template <typename T>
  T LoadField(Cpu& cpu, Ptr p, uint32_t off) {
    cpu.Alu(1);
    return Load<T>(cpu, Ptr{p.addr + off});
  }

  template <typename T>
  void StoreField(Cpu& cpu, Ptr p, uint32_t off, T value) {
    cpu.Alu(1);
    Store<T>(cpu, Ptr{p.addr + off}, value);
  }

  Ptr LoadPtr(Cpu& cpu, Ptr slot) {
    rt_.CheckAccess(cpu, slot.addr, kPtrSlotBytes, /*is_write=*/false);
    const uint64_t raw = enclave_->Load<uint64_t>(cpu, slot.addr);
    return Ptr{static_cast<uint32_t>(raw)};
  }

  void StorePtr(Cpu& cpu, Ptr slot, Ptr value) {
    rt_.CheckAccess(cpu, slot.addr, kPtrSlotBytes, /*is_write=*/true);
    enclave_->Store<uint64_t>(cpu, slot.addr, static_cast<uint64_t>(value.addr));
  }

  class Span {
   public:
    Span(AsanPolicy* policy, Ptr base) : policy_(policy), base_(base) {}

    template <typename T>
    T Load(Cpu& cpu, uint64_t byte_off) {
      cpu.Alu(1);
      return policy_->Load<T>(cpu, Ptr{base_.addr + static_cast<uint32_t>(byte_off)});
    }
    template <typename T>
    void Store(Cpu& cpu, uint64_t byte_off, T value) {
      cpu.Alu(1);
      policy_->Store<T>(cpu, Ptr{base_.addr + static_cast<uint32_t>(byte_off)}, value);
    }

   private:
    AsanPolicy* policy_;
    Ptr base_;
  };

  Span OpenSpan(Cpu& cpu, Ptr base, uint64_t extent_bytes) {
    (void)cpu;
    (void)extent_bytes;
    return Span(this, base);
  }

  void Memcpy(Cpu& cpu, Ptr dst, Ptr src, uint32_t n) {
    if (n == 0) {
      return;
    }
    // ASan's interceptor checks both ranges (first+last granule fast path,
    // full poison scan), then copies.
    rt_.CheckAccess(cpu, src.addr, n, /*is_write=*/false);
    rt_.CheckAccess(cpu, dst.addr, n, /*is_write=*/true);
    cpu.MemAccess(src.addr, n, AccessClass::kAppLoad);
    cpu.MemAccess(dst.addr, n, AccessClass::kAppStore);
    std::memmove(enclave_->space().HostPtr(dst.addr), enclave_->space().HostPtr(src.addr), n);
  }

  void Memset(Cpu& cpu, Ptr dst, uint8_t value, uint32_t n) {
    if (n == 0) {
      return;
    }
    rt_.CheckAccess(cpu, dst.addr, n, /*is_write=*/true);
    cpu.MemAccess(dst.addr, n, AccessClass::kAppStore);
    std::memset(enclave_->space().HostPtr(dst.addr), value, n);
  }

  // Fault campaigns: metadata flips land in the shadow memory.
  void AttachFaults(FaultInjector* faults) {
    faults->RegisterMetadataCorruptor(
        [this](Cpu& cpu, Rng& rng) { return rt_.CorruptShadow(cpu, rng); });
  }

  Enclave* enclave() { return enclave_; }
  AsanRuntime& runtime() { return rt_; }

 private:
  Enclave* enclave_;
  AsanRuntime rt_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_ASAN_ASAN_POLICY_H_
