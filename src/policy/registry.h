// The scheme registry: the open version of the paper's SS3.5 "metadata
// management framework" claim.
//
// Every memory-safety scheme ships one SchemeDescriptor - stable CLI id,
// display name, capability claims, fault-surface hooks, per-scheme option
// defaults and a RIPE defense factory - registered from its own directory
// under src/policy/<scheme>/ (see scheme_list.h, the single registration
// point). Everything outside src/policy enumerates schemes through this
// table instead of naming the four paper schemes:
//
//   * PolicyName / flag parsing / trace headers / JSON keys all read the
//     same id<->name mapping (policy.cc);
//   * bench drivers size their tables from AllSchemes()/PaperSchemes();
//   * the conformance battery (tests/policy_conformance_test.cc) checks
//     each scheme against its own capability claims;
//   * RIPE dispatches through make_ripe_defense instead of a Defense enum.
//
// Adding a sixth scheme means: one directory, one enum value, one entry in
// scheme_list.h. No bench driver, trace, fault or RIPE edits.

#ifndef SGXBOUNDS_SRC_POLICY_REGISTRY_H_
#define SGXBOUNDS_SRC_POLICY_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/policy/policy.h"

namespace sgxb {

struct RunResult;
class RipeDefense;
struct RipeMachine;

// What a scheme claims to detect; the conformance battery verifies every
// claim (positively and negatively) for every registered scheme.
struct SchemeCapabilities {
  bool detects_oob_write = false;
  bool detects_oob_read = false;
  bool detects_underflow = false;
  bool detects_uaf = false;
  // Scheme registers a metadata corruptor with the fault injector
  // (kMetadataFlip events are skipped otherwise, as for native).
  bool has_metadata_corruptor = false;
  // OobPolicy::kBoundless is meaningful for this scheme.
  bool supports_boundless = false;
};

// Builds the scheme's RIPE defense over a fresh RIPE machine (src/ripe).
using RipeDefenseFactory = std::unique_ptr<RipeDefense> (*)(const RipeMachine&);

struct SchemeDescriptor {
  PolicyKind kind = PolicyKind::kNative;
  // Stable CLI id ("sgxbounds"): flags, trace tool, JSON keys.
  const char* id = "";
  // Display name ("SGXBounds"): tables, PolicyName().
  const char* name = "";
  // Extra accepted CLI spellings (e.g. "sgx" for native, matching the
  // paper's name for the uninstrumented baseline).
  std::vector<const char*> aliases;
  // The overhead baseline the ratio tables divide by (native).
  bool baseline = false;
  // One of the paper's four schemes (the default bench suite; plugged-in
  // schemes like l4ptr are opt-in via --policies so figure stdout stays
  // comparable with the paper).
  bool in_paper_suite = false;
  // Where the scheme keeps its safety metadata (docs + fault campaign).
  const char* metadata_surface = "";
  SchemeCapabilities caps;
  // Per-scheme option defaults (the SS4.4 switches etc.).
  PolicyOptions default_options;
  // Table 4 expectation: attacks prevented out of 16.
  int ripe_expected_prevented = 0;
  // Optional scheme-specific RunResult metric (MPX bounds-table count).
  const char* extra_metric_label = nullptr;
  uint64_t (*extra_metric)(const RunResult&) = nullptr;
  RipeDefenseFactory make_ripe_defense = nullptr;
};

// Descriptor for one kind; aborts on an unregistered kind.
const SchemeDescriptor& SchemeOf(PolicyKind kind);

// All registered schemes, in registration order (native first; the paper's
// presentation order native, mpx, asan, sgxbounds, then plugged-in schemes).
const std::vector<const SchemeDescriptor*>& AllSchemes();

// The paper's four default schemes, in the same order.
const std::vector<const SchemeDescriptor*>& PaperSchemes();

// Lookup by CLI id or alias; nullptr when unknown.
const SchemeDescriptor* FindScheme(const std::string& id_or_alias);

// All registered CLI ids in registration order (for AddChoice validation).
std::vector<std::string> PolicyChoices();

// Parses one CLI id/alias; prints the valid spellings and exits(2) on error.
PolicyKind ParsePolicyKind(const std::string& s);

// Parses the shared --policies= flag: a comma-separated id list, or the
// shorthands "paper" (the four paper schemes) and "all" (every registered
// scheme). On error returns empty and fills *error.
std::vector<PolicyKind> ParsePolicyList(const std::string& csv, std::string* error);

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_REGISTRY_H_
