// SGXBounds as a workload policy: tagged pointers travel through the program,
// every access is bounds-checked, pointer-in-memory needs nothing special
// (the tag rides in the 64-bit slot), and the SS4.4 optimizations map to
// LoadField/StoreField (safe-access elision) and OpenSpan (check hoisting).

#ifndef SGXBOUNDS_SRC_POLICY_SGXBOUNDS_SGXBOUNDS_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_SGXBOUNDS_SGXBOUNDS_POLICY_H_

#include "src/fault/fault.h"
#include "src/policy/policy.h"
#include "src/policy/registry.h"
#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {

class SgxBoundsPolicy {
 public:
  static constexpr PolicyKind kKind = PolicyKind::kSgxBounds;

  // Registry entry (defined in this scheme's scheme.cc).
  static const SchemeDescriptor& Descriptor();

  using Ptr = TaggedPtr;

  SgxBoundsPolicy(Enclave* enclave, Heap* heap, const PolicyOptions& options)
      : enclave_(enclave), rt_(enclave, heap, options.oob), options_(options) {
    rt_.boundless().set_exhaust_policy(options.overlay_exhaust);
  }

  Ptr Malloc(Cpu& cpu, uint32_t size) { return rt_.Malloc(cpu, size); }

  Ptr AlignedAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
    return rt_.MallocAligned(cpu, size, align);
  }
  Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem) { return rt_.Calloc(cpu, count, elem); }
  void Free(Cpu& cpu, Ptr p) { rt_.Free(cpu, p); }

  Ptr Offset(Cpu& cpu, Ptr p, int64_t delta) { return rt_.PtrAdd(cpu, p, delta); }

  uint32_t AddrOf(Ptr p) const { return ExtractPtr(p); }
  static Ptr FromAddr(uint32_t addr) { return MakeTagged(addr, 0); }

  template <typename T>
  T Load(Cpu& cpu, Ptr p) {
    return rt_.Load<T>(cpu, p);
  }

  template <typename T>
  void Store(Cpu& cpu, Ptr p, T value) {
    rt_.Store<T>(cpu, p, value);
  }

  // Checked access at a dynamic offset: the full SS3.2 sequence - masked
  // arithmetic, extract, LB footer load, two compares.
  template <typename T>
  T LoadAt(Cpu& cpu, Ptr p, uint64_t off) {
    cpu.Alu(1);
    return rt_.Load<T>(cpu, TaggedAdd(p, static_cast<int64_t>(off)));
  }

  template <typename T>
  void StoreAt(Cpu& cpu, Ptr p, uint64_t off, T value) {
    cpu.Alu(1);
    rt_.Store<T>(cpu, TaggedAdd(p, static_cast<int64_t>(off)), value);
  }

  // Provably-safe field access: with elision on, the compiler proved the
  // offset in-bounds and emits a raw access (SS4.4 "safe memory accesses").
  template <typename T>
  T LoadField(Cpu& cpu, Ptr p, uint32_t off) {
    if (options_.opt_safe_elision) {
      cpu.Alu(1);
      return enclave_->Load<T>(cpu, ExtractPtr(p) + off);
    }
    return rt_.Load<T>(cpu, TaggedAdd(p, off));
  }

  template <typename T>
  void StoreField(Cpu& cpu, Ptr p, uint32_t off, T value) {
    if (options_.opt_safe_elision) {
      cpu.Alu(1);
      enclave_->Store<T>(cpu, ExtractPtr(p) + off, value);
      return;
    }
    rt_.Store<T>(cpu, TaggedAdd(p, off), value);
  }

  // Pointer-in-memory: the tag is stored with the pointer, so a plain 8-byte
  // load/store moves pointer and bounds atomically (SS4.1).
  Ptr LoadPtr(Cpu& cpu, Ptr slot) {
    const ResolvedAccess r = rt_.CheckAccess(cpu, slot, kPtrSlotBytes, AccessType::kRead);
    if (r.zero_fill) {
      return 0;
    }
    return enclave_->Load<uint64_t>(cpu, r.addr);
  }

  void StorePtr(Cpu& cpu, Ptr slot, Ptr value) {
    const ResolvedAccess r = rt_.CheckAccess(cpu, slot, kPtrSlotBytes, AccessType::kWrite);
    enclave_->Store<uint64_t>(cpu, r.addr, value);
  }

  // Loop span (SS4.4 "hoisting checks out of loops"): with hoisting on, one
  // range check covers the whole extent and body accesses run unchecked; with
  // hoisting off, every access pays the full check.
  class Span {
   public:
    Span(SgxBoundsPolicy* policy, Ptr base, bool hoisted)
        : policy_(policy), base_(base), hoisted_(hoisted) {}

    template <typename T>
    T Load(Cpu& cpu, uint64_t byte_off) {
      if (hoisted_) {
        cpu.Alu(1);
        return policy_->enclave_->Load<T>(cpu,
                                          ExtractPtr(base_) + static_cast<uint32_t>(byte_off));
      }
      return policy_->rt_.Load<T>(cpu, TaggedAdd(base_, static_cast<int64_t>(byte_off)));
    }

    template <typename T>
    void Store(Cpu& cpu, uint64_t byte_off, T value) {
      if (hoisted_) {
        cpu.Alu(1);
        policy_->enclave_->Store<T>(cpu, ExtractPtr(base_) + static_cast<uint32_t>(byte_off),
                                    value);
        return;
      }
      policy_->rt_.Store<T>(cpu, TaggedAdd(base_, static_cast<int64_t>(byte_off)), value);
    }

   private:
    SgxBoundsPolicy* policy_;
    Ptr base_;
    bool hoisted_;
  };

  Span OpenSpan(Cpu& cpu, Ptr base, uint64_t extent_bytes) {
    if (options_.opt_hoist_checks) {
      rt_.CheckRange(cpu, base, extent_bytes);
      return Span(this, base, /*hoisted=*/true);
    }
    return Span(this, base, /*hoisted=*/false);
  }

  void Memcpy(Cpu& cpu, Ptr dst, Ptr src, uint32_t n) {
    if (n == 0) {
      return;
    }
    // libc-wrapper semantics: check both args once, then bulk move.
    const ResolvedAccess rs = rt_.CheckAccess(cpu, src, n, AccessType::kRead);
    const ResolvedAccess rd = rt_.CheckAccess(cpu, dst, n, AccessType::kWrite);
    cpu.MemAccess(rs.addr, n, AccessClass::kAppLoad);
    cpu.MemAccess(rd.addr, n, AccessClass::kAppStore);
    std::memmove(enclave_->space().HostPtr(rd.addr), enclave_->space().HostPtr(rs.addr), n);
  }

  void Memset(Cpu& cpu, Ptr dst, uint8_t value, uint32_t n) {
    if (n == 0) {
      return;
    }
    const ResolvedAccess rd = rt_.CheckAccess(cpu, dst, n, AccessType::kWrite);
    cpu.MemAccess(rd.addr, n, AccessClass::kAppStore);
    std::memset(enclave_->space().HostPtr(rd.addr), value, n);
  }

  // Fault campaigns: metadata flips land in a live object's LB footer.
  void AttachFaults(FaultInjector* faults) {
    rt_.set_track_objects(true);
    faults->RegisterMetadataCorruptor(
        [this](Cpu& cpu, Rng& rng) { return rt_.CorruptLbFooter(cpu, rng); });
  }

  Enclave* enclave() { return enclave_; }
  SgxBoundsRuntime& runtime() { return rt_; }

 private:
  Enclave* enclave_;
  SgxBoundsRuntime rt_;
  PolicyOptions options_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SGXBOUNDS_SGXBOUNDS_POLICY_H_
