// SGXBounds IR lowering: the dedicated tagged-pointer pass (kSgxCheck
// opcodes, "sgx" allocation symbol) with the SS4.4 switches, runtime
// attached via the interpreter's dedicated SGXBounds hook.

#ifndef SGXBOUNDS_SRC_POLICY_SGXBOUNDS_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_SGXBOUNDS_IR_LOWERING_H_

#include "src/ir/passes.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/sgxbounds/sgxbounds_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<SgxBoundsPolicy> {
  static void Apply(SgxBoundsPolicy& policy, Interpreter& interp, IrFunction& fn,
                    const PolicyOptions& options) {
    SgxPassOptions opts;
    opts.elide_safe = options.opt_safe_elision;
    opts.hoist_loops = options.opt_hoist_checks;
    RunSgxBoundsPass(fn, opts);
    interp.AttachSgx(&policy.runtime());
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SGXBOUNDS_IR_LOWERING_H_
