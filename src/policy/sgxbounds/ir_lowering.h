// SGXBounds IR lowering: the tagged-pointer lowering (kSgxCheck opcodes,
// "sgx" allocation symbol) run through the scheme-generic check pipeline,
// runtime attached via the interpreter's dedicated SGXBounds hook.
//
// SGXBounds' LB/UB are exact (no allocation padding floor), so in-field
// elision is not legal here; every other pass is.

#ifndef SGXBOUNDS_SRC_POLICY_SGXBOUNDS_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_SGXBOUNDS_IR_LOWERING_H_

#include "src/ir/opt/pipeline.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/sgxbounds/sgxbounds_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<SgxBoundsPolicy> {
  static CheckPassStats Apply(SgxBoundsPolicy& policy, Interpreter& interp,
                              IrFunction& fn, const PolicyOptions& options) {
    const CheckPassStats stats =
        RunCheckPipeline(fn, SgxBoundsCheckLowering(), CheckConfigFrom(options));
    interp.AttachSgx(&policy.runtime());
    return stats;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_SGXBOUNDS_IR_LOWERING_H_
