// Registry entry + RIPE participation for SGXBounds.

#include <cstring>

#include "src/policy/sgxbounds/sgxbounds_policy.h"
#include "src/ripe/defense.h"
#include "src/sgxbounds/libc.h"

namespace sgxb {
namespace {

// Tagged pointers + LB footers; libc goes through the fortified wrappers
// (SS5.1), which refuse an overflowing copy with EINVAL. The carve layout
// reserves FooterBytes() after every object for its LB footer.
class SgxBoundsRipeDefense final : public RipeDefense {
 public:
  explicit SgxBoundsRipeDefense(const RipeMachine& m)
      : m_(m), rt_(m.enclave, m.heap), libc_(&rt_) {}

  RipeObj AllocateHeap(Cpu& cpu, uint32_t size) override {
    RipeObj obj;
    obj.size = size;
    obj.handle = rt_.Malloc(cpu, size);
    obj.addr = ExtractPtr(obj.handle);
    return obj;
  }

  void RegisterNonHeap(Cpu& cpu, RipeObj& obj) override {
    obj.handle = rt_.SpecifyBounds(cpu, obj.addr, obj.addr + obj.size, ObjKind::kGlobal);
  }

  uint32_t CarveFootprint(uint32_t size) const override {
    return size + rt_.FooterBytes();
  }

  bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) override {
    rt_.CheckAccessAuto(cpu, TaggedAdd(obj.handle, offset), 1, AccessType::kWrite);
    m_.enclave->Store<uint8_t>(cpu, obj.addr + offset, value);
    return true;
  }

  bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                    uint32_t n) override {
    // Stage the payload in an untagged scratch area (the attacker's request
    // buffer), then call the fortified wrapper.
    const uint32_t scratch = m_.heap->Alloc(cpu, n);
    std::memcpy(m_.enclave->space().HostPtr(scratch), payload, n);
    const TaggedPtr src = MakeTagged(scratch, 0);
    const LibcError err = libc_.Memcpy(cpu, obj.handle, src, n);
    m_.heap->Free(cpu, scratch);
    return err == LibcError::kOk;
  }

  // SS8 extension: narrow &obj.field to the field's bounds.
  bool NarrowTo(Cpu& cpu, RipeObj& obj, uint32_t offset, uint32_t len) override {
    obj.handle = rt_.NarrowBounds(cpu, obj.handle, offset, len);
    return true;
  }

 private:
  RipeMachine m_;
  SgxBoundsRuntime rt_;
  FortifiedLibc libc_;
};

std::unique_ptr<RipeDefense> MakeDefense(const RipeMachine& m) {
  return std::make_unique<SgxBoundsRipeDefense>(m);
}

}  // namespace

const SchemeDescriptor& SgxBoundsPolicy::Descriptor() {
  static const SchemeDescriptor* desc = [] {
    auto* d = new SchemeDescriptor();
    d->kind = PolicyKind::kSgxBounds;
    d->id = "sgxbounds";
    d->name = "SGXBounds";
    d->in_paper_suite = true;
    d->metadata_surface = "LB footer at [UB, UB+4) inside each object";
    d->caps.detects_oob_write = true;
    d->caps.detects_oob_read = true;
    d->caps.detects_underflow = true;
    d->caps.has_metadata_corruptor = true;
    d->caps.supports_boundless = true;
    d->ripe_expected_prevented = 8;
    d->make_ripe_defense = &MakeDefense;
    return d;
  }();
  return *desc;
}

}  // namespace sgxb
