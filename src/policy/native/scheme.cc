// Registry entry + RIPE participation for the uninstrumented baseline.

#include <cstring>

#include "src/policy/native/native_policy.h"
#include "src/ripe/defense.h"

namespace sgxb {
namespace {

// No defense at all: plain stores, blind libc copies.
class NativeRipeDefense final : public RipeDefense {
 public:
  explicit NativeRipeDefense(const RipeMachine& m) : m_(m) {}

  RipeObj AllocateHeap(Cpu& cpu, uint32_t size) override {
    RipeObj obj;
    obj.size = size;
    obj.addr = m_.heap->Alloc(cpu, size);
    return obj;
  }

  void RegisterNonHeap(Cpu& cpu, RipeObj& obj) override {
    (void)cpu;
    (void)obj;
  }

  bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) override {
    m_.enclave->Store<uint8_t>(cpu, obj.addr + offset, value);
    return true;
  }

  bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                    uint32_t n) override {
    cpu.MemAccess(obj.addr, n, AccessClass::kAppStore);
    std::memcpy(m_.enclave->space().HostPtr(obj.addr), payload, n);
    return true;
  }

 private:
  RipeMachine m_;
};

std::unique_ptr<RipeDefense> MakeDefense(const RipeMachine& m) {
  return std::make_unique<NativeRipeDefense>(m);
}

}  // namespace

const SchemeDescriptor& NativePolicy::Descriptor() {
  static const SchemeDescriptor* desc = [] {
    auto* d = new SchemeDescriptor();
    d->kind = PolicyKind::kNative;
    d->id = "native";
    d->name = "SGX";  // the paper's name for the uninstrumented baseline
    d->aliases = {"sgx"};
    d->baseline = true;
    d->in_paper_suite = true;
    d->metadata_surface = "none";
    // All capability claims stay false: the baseline detects nothing.
    d->ripe_expected_prevented = 0;
    d->make_ripe_defense = &MakeDefense;
    return d;
  }();
  return *desc;
}

}  // namespace sgxb
