// The uninstrumented baseline ("SGX" bars in the paper's figures): plain
// allocation and direct accesses, charged only for the application's own
// traffic and addressing arithmetic.

#ifndef SGXBOUNDS_SRC_POLICY_NATIVE_NATIVE_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_NATIVE_NATIVE_POLICY_H_

#include "src/fault/fault.h"
#include "src/policy/policy.h"
#include "src/policy/registry.h"
#include "src/runtime/heap.h"

namespace sgxb {

class NativePolicy {
 public:
  static constexpr PolicyKind kKind = PolicyKind::kNative;

  // Registry entry (defined in this scheme's scheme.cc).
  static const SchemeDescriptor& Descriptor();

  struct Ptr {
    uint32_t addr = 0;
  };

  NativePolicy(Enclave* enclave, Heap* heap, const PolicyOptions& options)
      : enclave_(enclave), heap_(heap) {
    (void)options;
  }

  Ptr Malloc(Cpu& cpu, uint32_t size) { return Ptr{heap_->Alloc(cpu, size)}; }

  Ptr AlignedAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
    return Ptr{heap_->Alloc(cpu, size, align)};
  }

  Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem) {
    const uint64_t total = static_cast<uint64_t>(count) * elem;
    const Ptr p = Malloc(cpu, static_cast<uint32_t>(total));
    std::memset(enclave_->space().HostPtr(p.addr), 0, total);
    cpu.MemAccess(p.addr, static_cast<uint32_t>(total), AccessClass::kAppStore);
    return p;
  }

  void Free(Cpu& cpu, Ptr p) { heap_->Free(cpu, p.addr); }

  Ptr Offset(Cpu& cpu, Ptr p, int64_t delta) {
    cpu.Alu(1);
    return Ptr{static_cast<uint32_t>(p.addr + delta)};
  }

  uint32_t AddrOf(Ptr p) const { return p.addr; }
  static Ptr FromAddr(uint32_t addr) { return Ptr{addr}; }

  template <typename T>
  T Load(Cpu& cpu, Ptr p) {
    return enclave_->Load<T>(cpu, p.addr);
  }

  template <typename T>
  void Store(Cpu& cpu, Ptr p, T value) {
    enclave_->Store<T>(cpu, p.addr, value);
  }

  // Checked access at a dynamic offset (the common a[i] case where no
  // optimization applies). For the native build this is just addressing.
  template <typename T>
  T LoadAt(Cpu& cpu, Ptr p, uint64_t off) {
    cpu.Alu(1);
    return enclave_->Load<T>(cpu, p.addr + static_cast<uint32_t>(off));
  }

  template <typename T>
  void StoreAt(Cpu& cpu, Ptr p, uint64_t off, T value) {
    cpu.Alu(1);
    enclave_->Store<T>(cpu, p.addr + static_cast<uint32_t>(off), value);
  }

  template <typename T>
  T LoadField(Cpu& cpu, Ptr p, uint32_t off) {
    cpu.Alu(1);
    return enclave_->Load<T>(cpu, p.addr + off);
  }

  template <typename T>
  void StoreField(Cpu& cpu, Ptr p, uint32_t off, T value) {
    cpu.Alu(1);
    enclave_->Store<T>(cpu, p.addr + off, value);
  }

  Ptr LoadPtr(Cpu& cpu, Ptr slot) {
    const uint64_t raw = enclave_->Load<uint64_t>(cpu, slot.addr);
    return Ptr{static_cast<uint32_t>(raw)};
  }

  void StorePtr(Cpu& cpu, Ptr slot, Ptr value) {
    enclave_->Store<uint64_t>(cpu, slot.addr, static_cast<uint64_t>(value.addr));
  }

  // Loop span: direct unchecked access.
  class Span {
   public:
    Span(NativePolicy* policy, Ptr base) : policy_(policy), base_(base.addr) {}

    template <typename T>
    T Load(Cpu& cpu, uint64_t byte_off) {
      cpu.Alu(1);
      return policy_->enclave_->Load<T>(cpu, base_ + static_cast<uint32_t>(byte_off));
    }
    template <typename T>
    void Store(Cpu& cpu, uint64_t byte_off, T value) {
      cpu.Alu(1);
      policy_->enclave_->Store<T>(cpu, base_ + static_cast<uint32_t>(byte_off), value);
    }

   private:
    NativePolicy* policy_;
    uint32_t base_;
  };

  Span OpenSpan(Cpu& cpu, Ptr base, uint64_t extent_bytes) {
    (void)cpu;
    (void)extent_bytes;
    return Span(this, base);
  }

  void Memcpy(Cpu& cpu, Ptr dst, Ptr src, uint32_t n) {
    if (n == 0) {
      return;
    }
    cpu.MemAccess(src.addr, n, AccessClass::kAppLoad);
    cpu.MemAccess(dst.addr, n, AccessClass::kAppStore);
    std::memmove(enclave_->space().HostPtr(dst.addr), enclave_->space().HostPtr(src.addr), n);
  }

  void Memset(Cpu& cpu, Ptr dst, uint8_t value, uint32_t n) {
    if (n == 0) {
      return;
    }
    cpu.MemAccess(dst.addr, n, AccessClass::kAppStore);
    std::memset(enclave_->space().HostPtr(dst.addr), value, n);
  }

  // Fault campaigns: native code has no safety metadata to corrupt, so
  // kMetadataFlip events are counted as skipped.
  void AttachFaults(FaultInjector* faults) { (void)faults; }

  Enclave* enclave() { return enclave_; }
  Heap* heap() { return heap_; }

 private:
  Enclave* enclave_;
  Heap* heap_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_NATIVE_NATIVE_POLICY_H_
