// MPX IR lowering: bndcl/bndcu instrumentation plus bndldx/bndstx at
// pointer-in-memory sites (kMpx* opcodes).

#ifndef SGXBOUNDS_SRC_POLICY_MPX_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_MPX_IR_LOWERING_H_

#include "src/ir/passes.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/mpx/mpx_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<MpxPolicy> {
  static void Apply(MpxPolicy& policy, Interpreter& interp, IrFunction& fn,
                    const PolicyOptions& options) {
    (void)options;
    RunMpxPass(fn);
    interp.AttachMpx(&policy.runtime());
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_MPX_IR_LOWERING_H_
