// MPX IR lowering: bndcl/bndcu instrumentation plus bndldx/bndstx at
// pointer-in-memory sites (kMpx* opcodes), through the scheme-generic check
// pipeline. MPX's tooling implements no elision/hoisting (matching the
// paper's baseline); redundant-check elimination is legal (bndldx/bndstx
// traffic is preserved even where a check is deleted) and defaults off.

#ifndef SGXBOUNDS_SRC_POLICY_MPX_IR_LOWERING_H_
#define SGXBOUNDS_SRC_POLICY_MPX_IR_LOWERING_H_

#include "src/ir/opt/pipeline.h"
#include "src/policy/ir_lowering.h"
#include "src/policy/mpx/mpx_policy.h"

namespace sgxb {

template <>
struct SchemeIrLowering<MpxPolicy> {
  static CheckPassStats Apply(MpxPolicy& policy, Interpreter& interp,
                              IrFunction& fn, const PolicyOptions& options) {
    const CheckPassStats stats =
        RunCheckPipeline(fn, MpxCheckLowering(), CheckConfigFrom(options));
    interp.AttachMpx(&policy.runtime());
    return stats;
  }
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_MPX_IR_LOWERING_H_
