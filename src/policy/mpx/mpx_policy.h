// Intel MPX as a workload policy: a pointer travels with its bounds "in a
// register" (part of Ptr); every access pays bndcl/bndcu; storing or loading
// a pointer through memory pays the bndstx/bndldx two-level table walk unless
// the 4-register file still holds that slot's bounds. Allocation itself is
// uninstrumented (bounds live in the disjoint tables).

#ifndef SGXBOUNDS_SRC_POLICY_MPX_MPX_POLICY_H_
#define SGXBOUNDS_SRC_POLICY_MPX_MPX_POLICY_H_

#include "src/fault/fault.h"
#include "src/mpx/mpx_runtime.h"
#include "src/policy/policy.h"
#include "src/policy/registry.h"

namespace sgxb {

class MpxPolicy {
 public:
  static constexpr PolicyKind kKind = PolicyKind::kMpx;

  // Registry entry (defined in this scheme's scheme.cc).
  static const SchemeDescriptor& Descriptor();

  struct Ptr {
    uint32_t addr = 0;
    MpxBounds bounds;  // INIT bounds for untagged pointers
  };

  MpxPolicy(Enclave* enclave, Heap* heap, const PolicyOptions& options)
      : enclave_(enclave), heap_(heap), rt_(enclave) {
    (void)options;
  }

  Ptr Malloc(Cpu& cpu, uint32_t size) {
    const uint32_t addr = heap_->Alloc(cpu, size);
    return Ptr{addr, rt_.BndMk(cpu, addr, size)};
  }

  Ptr AlignedAlloc(Cpu& cpu, uint32_t size, uint32_t align) {
    const uint32_t addr = heap_->Alloc(cpu, size, align);
    return Ptr{addr, rt_.BndMk(cpu, addr, size)};
  }

  Ptr Calloc(Cpu& cpu, uint32_t count, uint32_t elem) {
    const uint64_t total = static_cast<uint64_t>(count) * elem;
    const Ptr p = Malloc(cpu, static_cast<uint32_t>(total));
    std::memset(enclave_->space().HostPtr(p.addr), 0, total);
    cpu.MemAccess(p.addr, static_cast<uint32_t>(total), AccessClass::kAppStore);
    return p;
  }

  void Free(Cpu& cpu, Ptr p) { heap_->Free(cpu, p.addr); }

  Ptr Offset(Cpu& cpu, Ptr p, int64_t delta) {
    cpu.Alu(1);
    return Ptr{static_cast<uint32_t>(p.addr + delta), p.bounds};
  }

  uint32_t AddrOf(Ptr p) const { return p.addr; }
  static Ptr FromAddr(uint32_t addr) { return Ptr{addr, MpxBounds{}}; }

  template <typename T>
  T Load(Cpu& cpu, Ptr p) {
    rt_.BndCheck(cpu, p.bounds, p.addr, sizeof(T));
    return enclave_->Load<T>(cpu, p.addr);
  }

  template <typename T>
  void Store(Cpu& cpu, Ptr p, T value) {
    rt_.BndCheck(cpu, p.bounds, p.addr, sizeof(T));
    enclave_->Store<T>(cpu, p.addr, value);
  }

  // Checked access at a dynamic offset: bounds stay in the register, the
  // check is bndcl+bndcu.
  template <typename T>
  T LoadAt(Cpu& cpu, Ptr p, uint64_t off) {
    cpu.Alu(1);
    const uint32_t addr = p.addr + static_cast<uint32_t>(off);
    rt_.BndCheck(cpu, p.bounds, addr, sizeof(T));
    return enclave_->Load<T>(cpu, addr);
  }

  template <typename T>
  void StoreAt(Cpu& cpu, Ptr p, uint64_t off, T value) {
    cpu.Alu(1);
    const uint32_t addr = p.addr + static_cast<uint32_t>(off);
    rt_.BndCheck(cpu, p.bounds, addr, sizeof(T));
    enclave_->Store<T>(cpu, addr, value);
  }

  // Field access: bounds are already in a register, so the check is 2 ALU.
  template <typename T>
  T LoadField(Cpu& cpu, Ptr p, uint32_t off) {
    cpu.Alu(1);
    rt_.BndCheck(cpu, p.bounds, p.addr + off, sizeof(T));
    return enclave_->Load<T>(cpu, p.addr + off);
  }

  template <typename T>
  void StoreField(Cpu& cpu, Ptr p, uint32_t off, T value) {
    cpu.Alu(1);
    rt_.BndCheck(cpu, p.bounds, p.addr + off, sizeof(T));
    enclave_->Store<T>(cpu, p.addr + off, value);
  }

  // Pointer-in-memory: this is where MPX hurts. A pointer load must also
  // bndldx its bounds (2 dependent metadata loads); a pointer store must
  // bndstx (metadata store + possible BT allocation).
  Ptr LoadPtr(Cpu& cpu, Ptr slot) {
    rt_.BndCheck(cpu, slot.bounds, slot.addr, kPtrSlotBytes);
    const uint64_t raw = enclave_->Load<uint64_t>(cpu, slot.addr);
    const uint32_t value = static_cast<uint32_t>(raw);
    MpxBounds bounds;
    if (!rt_.RegLookup(slot.addr, &bounds)) {
      bounds = rt_.BndLdx(cpu, slot.addr, value);
    }
    return Ptr{value, bounds};
  }

  void StorePtr(Cpu& cpu, Ptr slot, Ptr value) {
    rt_.BndCheck(cpu, slot.bounds, slot.addr, kPtrSlotBytes);
    enclave_->Store<uint64_t>(cpu, slot.addr, static_cast<uint64_t>(value.addr));
    rt_.BndStx(cpu, slot.addr, value.addr, value.bounds);
  }

  // Loop span: bounds stay in the register; per-access bndcl/bndcu remain
  // (MPX has no check-hoisting pass in GCC's instrumentation).
  class Span {
   public:
    Span(MpxPolicy* policy, Ptr base) : policy_(policy), base_(base) {}

    template <typename T>
    T Load(Cpu& cpu, uint64_t byte_off) {
      cpu.Alu(1);
      const uint32_t addr = base_.addr + static_cast<uint32_t>(byte_off);
      policy_->rt_.BndCheck(cpu, base_.bounds, addr, sizeof(T));
      return policy_->enclave_->Load<T>(cpu, addr);
    }
    template <typename T>
    void Store(Cpu& cpu, uint64_t byte_off, T value) {
      cpu.Alu(1);
      const uint32_t addr = base_.addr + static_cast<uint32_t>(byte_off);
      policy_->rt_.BndCheck(cpu, base_.bounds, addr, sizeof(T));
      policy_->enclave_->Store<T>(cpu, addr, value);
    }

   private:
    MpxPolicy* policy_;
    Ptr base_;
  };

  Span OpenSpan(Cpu& cpu, Ptr base, uint64_t extent_bytes) {
    (void)cpu;
    (void)extent_bytes;
    return Span(this, base);
  }

  void Memcpy(Cpu& cpu, Ptr dst, Ptr src, uint32_t n) {
    if (n == 0) {
      return;
    }
    rt_.BndCheck(cpu, src.bounds, src.addr, n);
    rt_.BndCheck(cpu, dst.bounds, dst.addr, n);
    cpu.MemAccess(src.addr, n, AccessClass::kAppLoad);
    cpu.MemAccess(dst.addr, n, AccessClass::kAppStore);
    std::memmove(enclave_->space().HostPtr(dst.addr), enclave_->space().HostPtr(src.addr), n);
  }

  void Memset(Cpu& cpu, Ptr dst, uint8_t value, uint32_t n) {
    if (n == 0) {
      return;
    }
    rt_.BndCheck(cpu, dst.bounds, dst.addr, n);
    cpu.MemAccess(dst.addr, n, AccessClass::kAppStore);
    std::memset(enclave_->space().HostPtr(dst.addr), value, n);
  }

  // Fault campaigns: metadata flips land in a populated bounds-table entry.
  void AttachFaults(FaultInjector* faults) {
    rt_.set_track_entries(true);
    faults->RegisterMetadataCorruptor(
        [this](Cpu& cpu, Rng& rng) { return rt_.CorruptBoundsTable(cpu, rng); });
  }

  // Optional harness hook (run.h): Table 3's bounds-table count rides in the
  // RunResult. Templated so this header needs no RunResult definition.
  template <typename Result>
  void CollectRunMetrics(Result& result) {
    result.mpx_bt_count = rt_.bt_count();
  }

  Enclave* enclave() { return enclave_; }
  MpxRuntime& runtime() { return rt_; }

 private:
  Enclave* enclave_;
  Heap* heap_;
  MpxRuntime rt_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_POLICY_MPX_MPX_POLICY_H_
