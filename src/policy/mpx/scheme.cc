// Registry entry + RIPE participation for Intel MPX.

#include <cstring>

#include "src/policy/mpx/mpx_policy.h"
#include "src/policy/run.h"
#include "src/ripe/defense.h"

namespace sgxb {
namespace {

// MPX register-held bounds pack into RipeObj.handle as (ub << 32) | lb.
uint64_t PackBounds(const MpxBounds& b) {
  return (static_cast<uint64_t>(b.ub) << 32) | b.lb;
}

MpxBounds UnpackBounds(uint64_t handle) {
  MpxBounds b;
  b.lb = static_cast<uint32_t>(handle);
  b.ub = static_cast<uint32_t>(handle >> 32);
  return b;
}

// bndmk on allocation, bndcl/bndcu on instrumented stores; libc is NOT
// instrumented, so bounds are lost across the call and copies run blind -
// exactly why MPX stops only the two direct stack smashes in Table 4.
class MpxRipeDefense final : public RipeDefense {
 public:
  explicit MpxRipeDefense(const RipeMachine& m) : m_(m), rt_(m.enclave) {}

  RipeObj AllocateHeap(Cpu& cpu, uint32_t size) override {
    RipeObj obj;
    obj.size = size;
    obj.addr = m_.heap->Alloc(cpu, size);
    obj.handle = PackBounds(rt_.BndMk(cpu, obj.addr, size));
    return obj;
  }

  void RegisterNonHeap(Cpu& cpu, RipeObj& obj) override {
    obj.handle = PackBounds(rt_.BndMk(cpu, obj.addr, obj.size));
  }

  bool StoreByte(Cpu& cpu, const RipeObj& obj, uint32_t offset, uint8_t value) override {
    rt_.BndCheck(cpu, UnpackBounds(obj.handle), obj.addr + offset, 1);
    m_.enclave->Store<uint8_t>(cpu, obj.addr + offset, value);
    return true;
  }

  bool LibcCopyInto(Cpu& cpu, const RipeObj& obj, const uint8_t* payload,
                    uint32_t n) override {
    // Uninstrumented libc: the bounds never reach the callee.
    cpu.MemAccess(obj.addr, n, AccessClass::kAppStore);
    std::memcpy(m_.enclave->space().HostPtr(obj.addr), payload, n);
    return true;
  }

 private:
  RipeMachine m_;
  MpxRuntime rt_;
};

std::unique_ptr<RipeDefense> MakeDefense(const RipeMachine& m) {
  return std::make_unique<MpxRipeDefense>(m);
}

uint64_t BtCount(const RunResult& result) { return result.mpx_bt_count; }

}  // namespace

const SchemeDescriptor& MpxPolicy::Descriptor() {
  static const SchemeDescriptor* desc = [] {
    auto* d = new SchemeDescriptor();
    d->kind = PolicyKind::kMpx;
    d->id = "mpx";
    d->name = "MPX";
    d->in_paper_suite = true;
    d->metadata_surface = "two-level bounds tables in application memory";
    d->caps.detects_oob_write = true;
    d->caps.detects_oob_read = true;
    d->caps.detects_underflow = true;
    d->caps.has_metadata_corruptor = true;
    d->ripe_expected_prevented = 2;
    d->extra_metric_label = "mpx_bt_count";
    d->extra_metric = &BtCount;
    d->make_ripe_defense = &MakeDefense;
    return d;
  }();
  return *desc;
}

}  // namespace sgxb
