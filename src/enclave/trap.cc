#include "src/enclave/trap.h"

#include <cstdio>
#include <cstdlib>

namespace sgxb {

const char* TrapKindName(TrapKind kind) {
  // Exhaustive switch with no default: adding a TrapKind without a name here
  // is a compile-time -Wswitch warning, not a silent "?".
  switch (kind) {
    case TrapKind::kSegFault:
      return "SIGSEGV";
    case TrapKind::kSgxBoundsViolation:
      return "SGXBOUNDS-VIOLATION";
    case TrapKind::kAsanReport:
      return "ASAN-REPORT";
    case TrapKind::kMpxBoundRange:
      return "MPX-#BR";
    case TrapKind::kOutOfMemory:
      return "OUT-OF-MEMORY";
    case TrapKind::kIllegalInstruction:
      return "SIGILL";
    case TrapKind::kPolicyViolation:
      return "POLICY-VIOLATION";
  }
  std::abort();  // unreachable for in-range values
}

namespace {

// Uniform `KIND @ 0xADDR: detail` message, with the detail length bounded.
std::string FormatTrap(TrapKind kind, uint32_t addr, const std::string& detail) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s @ 0x%08x: ", TrapKindName(kind), addr);
  std::string message(buf);
  if (detail.size() > kMaxTrapDetailBytes) {
    message.append(detail, 0, kMaxTrapDetailBytes);
    message += "...";
  } else {
    message += detail;
  }
  return message;
}

}  // namespace

SimTrap::SimTrap(TrapKind kind, uint32_t addr, const std::string& detail)
    : std::runtime_error(FormatTrap(kind, addr, detail)), kind_(kind), addr_(addr) {}

}  // namespace sgxb
