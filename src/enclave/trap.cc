#include "src/enclave/trap.h"

#include <cstdio>

namespace sgxb {

const char* TrapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kSegFault:
      return "SIGSEGV";
    case TrapKind::kSgxBoundsViolation:
      return "SGXBOUNDS-VIOLATION";
    case TrapKind::kAsanReport:
      return "ASAN-REPORT";
    case TrapKind::kMpxBoundRange:
      return "MPX-#BR";
    case TrapKind::kOutOfMemory:
      return "OUT-OF-MEMORY";
    case TrapKind::kIllegalInstruction:
      return "SIGILL";
  }
  return "?";
}

namespace {

std::string FormatTrap(TrapKind kind, uint32_t addr, const std::string& detail) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s at 0x%08x: ", TrapKindName(kind), addr);
  return std::string(buf) + detail;
}

}  // namespace

SimTrap::SimTrap(TrapKind kind, uint32_t addr, const std::string& detail)
    : std::runtime_error(FormatTrap(kind, addr, detail)), kind_(kind), addr_(addr) {}

}  // namespace sgxb
