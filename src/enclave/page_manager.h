// Virtual-memory bookkeeping for the simulated enclave.
//
// Responsibilities:
//   * Region reservation: carve address-space regions for the heap, stacks,
//     globals, and hardening metadata (ASan shadow, MPX bounds tables). Low
//     regions grow upward from page 1; metadata regions grow downward from
//     just below the guard page at the top of the address space (SS4.4: the
//     last 4 KiB page is unaddressable to catch hoisted-check overflows).
//   * Commit/decommit: a page must be committed before it is addressable.
//     Committing zeroes the page and charges a minor fault; decommitting
//     returns host memory and invalidates EPC residency.
//   * Accounting: the paper's memory metric is peak reserved virtual memory
//     (Figs. 1, 7, 11 bottom panels and the Fig. 13 table). Hard metadata
//     reservations (ASan's 512 MiB shadow, each 4 MiB MPX bounds table)
//     count in full the moment they are mapped; demand-grown regions (heap,
//     stacks) count as they are committed, like a brk/mmap heap whose VIRT
//     grows with use.

#ifndef SGXBOUNDS_SRC_ENCLAVE_PAGE_MANAGER_H_
#define SGXBOUNDS_SRC_ENCLAVE_PAGE_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sim/machine.h"

namespace sgxb {

// How a region contributes to the virtual-memory metric.
enum class VmAccounting : uint8_t {
  kFull,      // counts fully at reservation time (mmap'd metadata regions)
  kOnCommit,  // counts per committed page (demand-grown heap/stack)
};

class PageManager {
 public:
  // space_bytes: size of the simulated address space (<= 4 GiB).
  PageManager(uint64_t space_bytes, MemorySystem* memory);

  // Reserves `bytes` of address space (rounded up to pages). Low regions are
  // for application data; high regions for hardening metadata. Returns the
  // region base address. Traps with kOutOfMemory when the space is exhausted.
  uint32_t ReserveLow(uint64_t bytes, const std::string& tag,
                      VmAccounting accounting = VmAccounting::kOnCommit);
  uint32_t ReserveHigh(uint64_t bytes, const std::string& tag,
                       VmAccounting accounting = VmAccounting::kFull);

  // Commits pages covering [addr, addr+bytes). Newly committed pages are
  // zeroed and charged as minor faults on `cpu` (pass nullptr to skip cycle
  // charging, e.g. during machine setup). Already-committed single-page
  // ranges (the overwhelmingly common case: metadata writes from hardening
  // runtimes re-committing hot shadow pages) return without the page walk.
  void Commit(Cpu* cpu, uint32_t addr, uint64_t bytes) {
    if (bytes == 0) {
      return;
    }
    const uint32_t first = PageOf(addr);
    const uint32_t last = PageOf(static_cast<uint32_t>(addr + bytes - 1));
    if (first == last && committed_[first]) {
      return;
    }
    CommitSlow(cpu, first, last);
  }
  void Decommit(uint32_t addr, uint64_t bytes);

  bool Committed(uint32_t addr) const { return committed_[PageOf(addr)] != 0; }

  // Addressability: guard pages trap as SIGSEGV even when inside a reserved
  // region.
  void SetGuardPage(uint32_t page);
  bool Addressable(uint32_t addr) const { return addressable_[PageOf(addr)] != 0; }

  // The paper's "virtual memory" metric.
  uint64_t vm_bytes() const { return vm_bytes_; }
  uint64_t peak_vm_bytes() const { return peak_vm_bytes_; }

  uint64_t committed_bytes() const { return committed_bytes_; }
  uint64_t peak_committed_bytes() const { return peak_committed_bytes_; }
  uint64_t space_bytes() const { return space_bytes_; }

  // Per-tag reserved bytes, for diagnostics ("how much went to bounds
  // tables?").
  uint64_t ReservedForTag(const std::string& tag) const;

  // Host-side zeroing needs the arena; wired by Enclave after construction.
  void AttachZeroHook(uint8_t* arena_base) { arena_base_ = arena_base; }

 private:
  struct Region {
    uint32_t base;
    uint64_t bytes;
    std::string tag;
    VmAccounting accounting;
  };

  uint32_t Carve(uint64_t bytes, const std::string& tag, VmAccounting accounting, bool low);
  void CommitSlow(Cpu* cpu, uint32_t first_page, uint32_t last_page);
  // Accounting mode of the region containing `page` (kOnCommit when outside
  // any region, which only happens in tests that commit raw pages).
  VmAccounting AccountingFor(uint32_t page) const {
    return static_cast<VmAccounting>(accounting_[page]);
  }
  void BumpVm(uint64_t bytes) {
    vm_bytes_ += bytes;
    if (vm_bytes_ > peak_vm_bytes_) {
      peak_vm_bytes_ = vm_bytes_;
    }
  }

  uint64_t space_bytes_;
  MemorySystem* memory_;
  uint8_t* arena_base_ = nullptr;
  // False until the first Decommit: fresh commits rely on the anonymous mmap
  // being zero-filled and skip the page memset; after any decommit, pages may
  // be recycled dirty and committing must zero them.
  bool zero_on_commit_ = false;
  uint64_t low_cursor_ = kPageSize;  // page 0 is the NULL guard
  uint64_t high_cursor_;             // grows downward
  uint64_t vm_bytes_ = 0;
  uint64_t peak_vm_bytes_ = 0;
  uint64_t committed_bytes_ = 0;
  uint64_t peak_committed_bytes_ = 0;
  std::vector<Region> regions_;
  std::vector<uint8_t> committed_;
  std::vector<uint8_t> guard_;
  // committed_[p] && !guard_[p], merged so Addressable() is a single load.
  std::vector<uint8_t> addressable_;
  // Per-page VmAccounting, filled at Carve so commit-time lookup is O(1).
  std::vector<uint8_t> accounting_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_ENCLAVE_PAGE_MANAGER_H_
