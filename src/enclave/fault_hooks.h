// Fault-injection hook interface.
//
// The enclave (and through it the heap) exposes two observation points to an
// attached FaultHooks implementation: every charged guest memory access, and
// every allocator entry. The concrete implementation lives in src/fault;
// keeping only this abstract interface here avoids a dependency cycle
// (fault -> enclave for injection, enclave -> fault hooks for the tap).
//
// Hooks are consulted on measured paths, so the enclave guards each call
// site with a null check — a detached enclave pays one predictable branch.

#ifndef SGXBOUNDS_SRC_ENCLAVE_FAULT_HOOKS_H_
#define SGXBOUNDS_SRC_ENCLAVE_FAULT_HOOKS_H_

#include <cstdint>

namespace sgxb {

class Cpu;

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  // Called after every charged guest Load/Store (the access has already been
  // performed and charged). The hook may issue further charged accesses
  // through the enclave; implementations must guard against re-entry.
  virtual void OnAccess(Cpu& cpu, uint32_t addr, uint32_t size) = 0;

  // Called at allocator entry, after the base malloc cycles are charged but
  // before the free-list scan. Return true to force this allocation to fail.
  virtual bool OnAlloc(Cpu& cpu) = 0;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_ENCLAVE_FAULT_HOOKS_H_
