// Backing storage for the simulated 32-bit enclave address space.
//
// SGXBounds requires the enclave to start at virtual address 0 (SS5.1: the
// paper sets vm.mmap_min_addr=0 and patches the SGX driver). The simulator
// gets the same effect for free: enclave addresses are 32-bit offsets into a
// host mmap region, so enclave address 0 is simply offset 0.
//
// The full 4 GiB is reserved lazily (anonymous mmap); pages cost host memory
// only when the guest actually commits and touches them.

#ifndef SGXBOUNDS_SRC_ENCLAVE_ADDRESS_SPACE_H_
#define SGXBOUNDS_SRC_ENCLAVE_ADDRESS_SPACE_H_

#include <cstdint>

#include "src/common/units.h"

namespace sgxb {

class AddressSpace {
 public:
  explicit AddressSpace(uint64_t size_bytes = 4 * kGiB);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint8_t* HostPtr(uint32_t addr) { return base_ + addr; }
  const uint8_t* HostPtr(uint32_t addr) const { return base_ + addr; }

  // Returns host pages in [addr, addr+bytes) to the OS and re-zeroes them.
  void ReleaseHostPages(uint32_t addr, uint64_t bytes);

  uint64_t size_bytes() const { return size_bytes_; }

 private:
  uint64_t size_bytes_;
  uint8_t* base_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_ENCLAVE_ADDRESS_SPACE_H_
