#include "src/enclave/page_manager.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/enclave/trap.h"

namespace sgxb {

PageManager::PageManager(uint64_t space_bytes, MemorySystem* memory)
    : space_bytes_(space_bytes), memory_(memory) {
  CHECK_GT(space_bytes, 2 * kPageSize);
  CHECK_LE(space_bytes, 4 * kGiB);
  const uint64_t pages = space_bytes / kPageSize;
  committed_.assign(pages, 0);
  guard_.assign(pages, 0);
  addressable_.assign(pages, 0);
  accounting_.assign(pages, static_cast<uint8_t>(VmAccounting::kOnCommit));
  // Page 0 (NULL) and the top page (SS4.4 loop-hoisting precaution) are
  // permanent guards.
  guard_[0] = 1;
  guard_[pages - 1] = 1;
  high_cursor_ = space_bytes - kPageSize;
}

uint32_t PageManager::Carve(uint64_t bytes, const std::string& tag, VmAccounting accounting,
                            bool low) {
  const uint64_t rounded = AlignUp64(bytes, kPageSize);
  uint32_t base;
  if (low) {
    if (low_cursor_ + rounded > high_cursor_) {
      throw SimTrap(TrapKind::kOutOfMemory, static_cast<uint32_t>(low_cursor_),
                    "address space exhausted reserving " + tag);
    }
    base = static_cast<uint32_t>(low_cursor_);
    low_cursor_ += rounded;
  } else {
    if (high_cursor_ < rounded || high_cursor_ - rounded < low_cursor_) {
      throw SimTrap(TrapKind::kOutOfMemory, static_cast<uint32_t>(high_cursor_),
                    "address space exhausted reserving " + tag);
    }
    high_cursor_ -= rounded;
    base = static_cast<uint32_t>(high_cursor_);
  }
  regions_.push_back({base, rounded, tag, accounting});
  const uint32_t first_page = PageOf(base);
  std::fill(accounting_.begin() + first_page,
            accounting_.begin() + first_page + rounded / kPageSize,
            static_cast<uint8_t>(accounting));
  if (accounting == VmAccounting::kFull) {
    BumpVm(rounded);
  }
  return base;
}

uint32_t PageManager::ReserveLow(uint64_t bytes, const std::string& tag,
                                 VmAccounting accounting) {
  return Carve(bytes, tag, accounting, /*low=*/true);
}

uint32_t PageManager::ReserveHigh(uint64_t bytes, const std::string& tag,
                                  VmAccounting accounting) {
  return Carve(bytes, tag, accounting, /*low=*/false);
}

void PageManager::CommitSlow(Cpu* cpu, uint32_t first, uint32_t last) {
  // Jump between uncommitted pages with memchr: large ranges that are already
  // (mostly) committed — heap blocks recycled every iteration, hot shadow
  // regions — skip at memory-scan speed instead of testing page by page.
  // Fresh pages are then swallowed as contiguous runs so the minor-fault
  // charge (Cpu::CommitPages, one trace event per run) is batched.
  const uint8_t* bits = committed_.data();
  uint32_t page = first;
  while (page <= last) {
    const void* gap = std::memchr(bits + page, 0, last - page + 1);
    if (gap == nullptr) {
      break;
    }
    page = static_cast<uint32_t>(static_cast<const uint8_t*>(gap) - bits);
    const uint32_t run_start = page;
    while (page <= last && !committed_[page]) {
      committed_[page] = 1;
      addressable_[page] = guard_[page] == 0;
      committed_bytes_ += kPageSize;
      if (AccountingFor(page) == VmAccounting::kOnCommit) {
        BumpVm(kPageSize);
      }
      if (zero_on_commit_ && arena_base_ != nullptr) {
        std::memset(arena_base_ + static_cast<uint64_t>(page) * kPageSize, 0, kPageSize);
      }
      ++page;
    }
    if (cpu != nullptr) {
      cpu->CommitPages(run_start, page - run_start);
    }
  }
  peak_committed_bytes_ = std::max(peak_committed_bytes_, committed_bytes_);
}

void PageManager::Decommit(uint32_t addr, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  // Once any page has been handed back it may carry stale data, so recommits
  // must zero from here on. Until then the backing mmap is zero-filled and
  // first-time commits can skip the memset.
  zero_on_commit_ = true;
  const uint32_t first = PageOf(addr);
  const uint32_t last = PageOf(static_cast<uint32_t>(addr + bytes - 1));
  // Replay invalidates the whole range: equivalent, because a page that was
  // never committed cannot be EPC-resident.
  if (memory_->trace() != nullptr) {
    memory_->trace()->OnDecommit(first, last - first + 1);
  }
  for (uint32_t page = first; page <= last; ++page) {
    if (!committed_[page]) {
      continue;
    }
    committed_[page] = 0;
    addressable_[page] = 0;
    committed_bytes_ -= kPageSize;
    if (AccountingFor(page) == VmAccounting::kOnCommit) {
      vm_bytes_ -= kPageSize;
    }
    memory_->epc().Invalidate(page);
  }
}

void PageManager::SetGuardPage(uint32_t page) {
  CHECK_LT(page, guard_.size());
  guard_[page] = 1;
  addressable_[page] = 0;
}

uint64_t PageManager::ReservedForTag(const std::string& tag) const {
  uint64_t total = 0;
  for (const auto& region : regions_) {
    if (region.tag == tag) {
      total += region.bytes;
    }
  }
  return total;
}

}  // namespace sgxb
