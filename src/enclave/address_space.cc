#include "src/enclave/address_space.h"

#include <sys/mman.h>

#include "src/common/check.h"

namespace sgxb {

AddressSpace::AddressSpace(uint64_t size_bytes) : size_bytes_(size_bytes) {
  CHECK_GT(size_bytes, 0u);
  CHECK_LE(size_bytes, 4 * kGiB);
  void* mem = ::mmap(nullptr, size_bytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  CHECK(mem != MAP_FAILED);
  base_ = static_cast<uint8_t*>(mem);
}

AddressSpace::~AddressSpace() { ::munmap(base_, size_bytes_); }

void AddressSpace::ReleaseHostPages(uint32_t addr, uint64_t bytes) {
  const uint64_t start = AlignUp64(addr, kPageSize);
  const uint64_t end = (static_cast<uint64_t>(addr) + bytes) & ~static_cast<uint64_t>(kPageSize - 1);
  if (end <= start) {
    return;
  }
  ::madvise(base_ + start, end - start, MADV_DONTNEED);
}

}  // namespace sgxb
