// The simulated enclave: 32-bit address space + memory-system simulation.
//
// An Enclave composes the AddressSpace (backing bytes), the PageManager
// (commit/guard/accounting) and the MemorySystem (caches + EPC + MEE). All
// guest memory accesses go through Load/Store here: they perform the real
// host-side data movement AND charge simulated cycles, so workload results
// carry both correct values and a faithful cost account.
//
// Typical wiring:
//
//   EnclaveConfig cfg;                 // enclave_mode defaults to true
//   Enclave enclave(cfg);
//   Cpu& cpu = enclave.main_cpu();
//   uint32_t a = enclave.pages().ReserveLow(1 * kMiB, "heap");
//   enclave.pages().Commit(&cpu, a, 1 * kMiB);
//   enclave.Store<uint64_t>(cpu, a, 42);
//   uint64_t v = enclave.Load<uint64_t>(cpu, a);

#ifndef SGXBOUNDS_SRC_ENCLAVE_ENCLAVE_H_
#define SGXBOUNDS_SRC_ENCLAVE_ENCLAVE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/enclave/address_space.h"
#include "src/enclave/fault_hooks.h"
#include "src/enclave/page_manager.h"
#include "src/enclave/trap.h"
#include "src/sim/machine.h"

namespace sgxb {

struct EnclaveConfig {
  SimConfig sim;
  // Size of the enclave virtual address space. SGX1 hardware allows 36 bits;
  // SGXBounds assumes <= 32 bits (SS3.1). 4 GiB reserves the full tagged-
  // pointer space.
  uint64_t space_bytes = 4 * kGiB;
};

class Enclave {
 public:
  explicit Enclave(const EnclaveConfig& config = EnclaveConfig());

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  MemorySystem& memsys() { return memsys_; }
  PageManager& pages() { return pages_; }
  AddressSpace& space() { return space_; }
  Cpu& main_cpu() { return main_cpu_; }
  const EnclaveConfig& config() const { return config_; }

  // Creates an additional hardware-thread context sharing this enclave's
  // LLC/EPC. Lifetime is owned by the enclave.
  Cpu* NewCpu();

  // Attaches (or, with null, detaches) a trace recorder: the main cpu
  // registers as trace cpu 0, and every Cpu created afterwards registers
  // itself. Attach before any charged work for a complete recording.
  void AttachTrace(TraceRecorder* trace);

  // Attaches (or, with null, detaches) fault-injection hooks. Every charged
  // Load/Store reports to the hooks after it completes; the heap consults
  // them at allocator entry via faults().
  void AttachFaults(FaultHooks* faults) { faults_ = faults; }
  FaultHooks* faults() const { return faults_; }

  // --- Guest memory access (charged + checked) ---

  template <typename T>
  T Load(Cpu& cpu, uint32_t addr, AccessClass klass = AccessClass::kAppLoad) {
    CheckAddressable(addr, sizeof(T));
    cpu.MemAccess(addr, sizeof(T), klass);
    T value;
    std::memcpy(&value, space_.HostPtr(addr), sizeof(T));
    if (faults_ != nullptr) {
      faults_->OnAccess(cpu, addr, sizeof(T));
    }
    return value;
  }

  template <typename T>
  void Store(Cpu& cpu, uint32_t addr, T value, AccessClass klass = AccessClass::kAppStore) {
    CheckAddressable(addr, sizeof(T));
    cpu.MemAccess(addr, sizeof(T), klass);
    std::memcpy(space_.HostPtr(addr), &value, sizeof(T));
    if (faults_ != nullptr) {
      faults_->OnAccess(cpu, addr, sizeof(T));
    }
  }

  void LoadBytes(Cpu& cpu, uint32_t addr, void* dst, uint32_t n,
                 AccessClass klass = AccessClass::kAppLoad);
  void StoreBytes(Cpu& cpu, uint32_t addr, const void* src, uint32_t n,
                  AccessClass klass = AccessClass::kAppStore);

  // Direct (uncharged) views for test assertions and machine setup. Guest
  // code must never use these on a measured path.
  template <typename T>
  T Peek(uint32_t addr) const {
    T value;
    std::memcpy(&value, space_.HostPtr(addr), sizeof(T));
    return value;
  }
  template <typename T>
  void Poke(uint32_t addr, T value) {
    std::memcpy(space_.HostPtr(addr), &value, sizeof(T));
  }

  // Peak virtual memory, the metric plotted in the paper's memory figures.
  uint64_t PeakVirtualBytes() const { return pages_.peak_vm_bytes(); }

  // Aggregated counters over all Cpus created on this enclave.
  PerfCounters TotalCounters() const;

 private:
  // Fast path inline: almost every access is single-page and addressable.
  // Multi-page spans and the SIGSEGV throw stay out of line so the check
  // compiles to one load + compare at each Load/Store site.
  void CheckAddressable(uint32_t addr, uint32_t size) {
    const uint32_t first = PageOf(addr);
    const uint32_t last = size == 0 ? first : PageOf(addr + size - 1);
    if (first == last && pages_.Addressable(addr)) {
      return;
    }
    CheckAddressableSlow(first, last);
  }
  void CheckAddressableSlow(uint32_t first_page, uint32_t last_page);

  EnclaveConfig config_;
  MemorySystem memsys_;
  AddressSpace space_;
  PageManager pages_;
  Cpu main_cpu_;
  std::vector<std::unique_ptr<Cpu>> extra_cpus_;
  FaultHooks* faults_ = nullptr;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_ENCLAVE_ENCLAVE_H_
