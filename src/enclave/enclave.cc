#include "src/enclave/enclave.h"

namespace sgxb {

Enclave::Enclave(const EnclaveConfig& config)
    : config_(config),
      memsys_(config.sim),
      space_(config.space_bytes),
      pages_(config.space_bytes, &memsys_),
      main_cpu_(&memsys_) {
  pages_.AttachZeroHook(space_.HostPtr(0));
}

void Enclave::CheckAddressableSlow(uint32_t first_page, uint32_t last_page) {
  for (uint32_t page = first_page;; ++page) {
    if (!pages_.Addressable(page << kPageShift)) {
      throw SimTrap(TrapKind::kSegFault, page << kPageShift,
                    "access to unmapped or guard page");
    }
    if (page == last_page) {
      break;
    }
  }
}

Cpu* Enclave::NewCpu() {
  extra_cpus_.push_back(std::make_unique<Cpu>(&memsys_));
  Cpu* cpu = extra_cpus_.back().get();
  if (TraceRecorder* trace = memsys_.trace()) {
    cpu->AttachTrace(trace, trace->RegisterCpu(&cpu->counters()));
  }
  return cpu;
}

void Enclave::AttachTrace(TraceRecorder* trace) {
  memsys_.set_trace(trace);
  if (trace != nullptr) {
    main_cpu_.AttachTrace(trace, trace->RegisterCpu(&main_cpu_.counters()));
    for (auto& cpu : extra_cpus_) {
      cpu->AttachTrace(trace, trace->RegisterCpu(&cpu->counters()));
    }
  } else {
    main_cpu_.AttachTrace(nullptr, 0);
    for (auto& cpu : extra_cpus_) {
      cpu->AttachTrace(nullptr, 0);
    }
  }
}

void Enclave::LoadBytes(Cpu& cpu, uint32_t addr, void* dst, uint32_t n, AccessClass klass) {
  if (n == 0) {
    return;
  }
  CheckAddressable(addr, n);
  cpu.MemAccess(addr, n, klass);
  std::memcpy(dst, space_.HostPtr(addr), n);
  if (faults_ != nullptr) {
    faults_->OnAccess(cpu, addr, n);
  }
}

void Enclave::StoreBytes(Cpu& cpu, uint32_t addr, const void* src, uint32_t n,
                         AccessClass klass) {
  if (n == 0) {
    return;
  }
  CheckAddressable(addr, n);
  cpu.MemAccess(addr, n, klass);
  std::memcpy(space_.HostPtr(addr), src, n);
  if (faults_ != nullptr) {
    faults_->OnAccess(cpu, addr, n);
  }
}

PerfCounters Enclave::TotalCounters() const {
  PerfCounters total = main_cpu_.counters();
  for (const auto& cpu : extra_cpus_) {
    total += cpu->counters();
  }
  return total;
}

}  // namespace sgxb
