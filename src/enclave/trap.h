// Simulated hardware/runtime traps.
//
// A memory-safety scheme turns silent corruption into a trap; the security
// experiments (RIPE, CVE reproductions) observe which trap fired, if any.
// Traps are modeled as C++ exceptions so a harness can catch and classify
// them; production code paths in the simulator never throw on the hot path.

#ifndef SGXBOUNDS_SRC_ENCLAVE_TRAP_H_
#define SGXBOUNDS_SRC_ENCLAVE_TRAP_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sgxb {

enum class TrapKind : uint8_t {
  // Access to an unmapped/guard page (the simulated SIGSEGV).
  kSegFault,
  // SGXBounds check failure (fail-fast mode).
  kSgxBoundsViolation,
  // AddressSanitizer redzone / poisoned-shadow hit.
  kAsanReport,
  // Intel MPX #BR bound-range exception.
  kMpxBoundRange,
  // Allocation failure (enclave memory exhausted) - how MPX dies on dedup.
  kOutOfMemory,
  // Guest program invoked an illegal operation (e.g. `int` in shellcode,
  // which SGX forbids - SS6.6).
  kIllegalInstruction,
  // Generic memory-safety violation raised by a registry-plugged scheme that
  // has no dedicated trap kind of its own (e.g. l4ptr). The four paper
  // schemes keep their historical kinds for trace-format stability.
  kPolicyViolation,
};

// Number of TrapKind values; per-kind counter arrays size themselves with
// this (keep in sync with the enum — TrapKindName's exhaustive switch flags
// additions).
inline constexpr uint32_t kTrapKindCount = 7;

const char* TrapKindName(TrapKind kind);

// Longest detail string admitted into a SimTrap message; longer details are
// truncated with "..." so a hostile or runaway detail cannot bloat logs or
// trace summaries.
inline constexpr size_t kMaxTrapDetailBytes = 160;

class SimTrap : public std::runtime_error {
 public:
  SimTrap(TrapKind kind, uint32_t addr, const std::string& detail);

  TrapKind kind() const { return kind_; }
  uint32_t addr() const { return addr_; }

 private:
  TrapKind kind_;
  uint32_t addr_;
};

}  // namespace sgxb

#endif  // SGXBOUNDS_SRC_ENCLAVE_TRAP_H_
