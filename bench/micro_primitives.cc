// Microbenchmarks (google-benchmark) of the hot instrumentation primitives:
// host-side throughput of the tagged-pointer codec and the per-access check
// paths of each scheme. These are the operations executed billions of times
// by the figure reproductions; keeping them cheap keeps the simulator fast.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/asan/asan_runtime.h"
#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/mpx/mpx_runtime.h"
#include "src/sgxbounds/bounds_runtime.h"

namespace sgxb {
namespace {

void BM_TaggedCodec(benchmark::State& state) {
  uint64_t x = 0x12345;
  for (auto _ : state) {
    TaggedPtr t = MakeTagged(static_cast<uint32_t>(x), static_cast<uint32_t>(x) + 64);
    benchmark::DoNotOptimize(ExtractPtr(t));
    benchmark::DoNotOptimize(ExtractUb(t));
    t = TaggedAdd(t, 8);
    benchmark::DoNotOptimize(t);
    ++x;
  }
}
BENCHMARK(BM_TaggedCodec);

struct SimFixtures {
  SimFixtures() {
    EnclaveConfig cfg;
    cfg.space_bytes = 64 * kMiB;
    enclave = std::make_unique<Enclave>(cfg);
    heap = std::make_unique<Heap>(enclave.get(), 16 * kMiB);
    sgx = std::make_unique<SgxBoundsRuntime>(enclave.get(), heap.get());
    asan = std::make_unique<AsanRuntime>(enclave.get(), heap.get());
    mpx = std::make_unique<MpxRuntime>(enclave.get());
  }
  std::unique_ptr<Enclave> enclave;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SgxBoundsRuntime> sgx;
  std::unique_ptr<AsanRuntime> asan;
  std::unique_ptr<MpxRuntime> mpx;
};

void BM_SgxBoundsCheckedLoad(benchmark::State& state) {
  SimFixtures f;
  Cpu& cpu = f.enclave->main_cpu();
  const TaggedPtr p = f.sgx->Malloc(cpu, 256);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sgx->Load<uint32_t>(cpu, TaggedAdd(p, (i++ * 4) % 252)));
  }
}
BENCHMARK(BM_SgxBoundsCheckedLoad);

void BM_AsanCheckedAccess(benchmark::State& state) {
  SimFixtures f;
  Cpu& cpu = f.enclave->main_cpu();
  const uint32_t p = f.asan->Malloc(cpu, 256);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.asan->CheckAccess(cpu, p + (i++ * 4) % 252, 4, false));
  }
}
BENCHMARK(BM_AsanCheckedAccess);

void BM_MpxTableWalk(benchmark::State& state) {
  SimFixtures f;
  Cpu& cpu = f.enclave->main_cpu();
  const uint32_t slot = f.heap->Alloc(cpu, 8);
  const MpxBounds b = f.mpx->BndMk(cpu, 0x1000, 64);
  f.mpx->BndStx(cpu, slot, 0x1000, b);
  for (auto _ : state) {
    f.mpx->RegInvalidate(slot);
    benchmark::DoNotOptimize(f.mpx->BndLdx(cpu, slot, 0x1000));
  }
}
BENCHMARK(BM_MpxTableWalk);

void BM_CacheSimAccess(benchmark::State& state) {
  SimFixtures f;
  Cpu& cpu = f.enclave->main_cpu();
  const uint32_t base = f.heap->Alloc(cpu, 1 * kMiB);
  uint64_t i = 0;
  for (auto _ : state) {
    cpu.MemAccess(base + (i * 64) % (1 * kMiB), 4, AccessClass::kAppLoad);
    ++i;
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_HeapAllocFree(benchmark::State& state) {
  SimFixtures f;
  Cpu& cpu = f.enclave->main_cpu();
  for (auto _ : state) {
    const uint32_t p = f.heap->Alloc(cpu, 128);
    f.heap->Free(cpu, p);
  }
}
BENCHMARK(BM_HeapAllocFree);

// The farm records one histogram Add per served request (src/farm), so the
// sketch insert is a fleet-simulation hot path alongside the check paths.
void BM_LatencyHistogramAdd(benchmark::State& state) {
  LatencyHistogram h;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.Add(x & 0xffffffu);
  }
  benchmark::DoNotOptimize(h.Digest());
}
BENCHMARK(BM_LatencyHistogramAdd);

void BM_LatencyHistogramQuantile(benchmark::State& state) {
  LatencyHistogram h;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 100000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.Add(x & 0xffffffu);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.P999());
  }
}
BENCHMARK(BM_LatencyHistogramQuantile);

// --- interpreter dispatch ---------------------------------------------------------
//
// Pure-ALU counted loop (no memory traffic): isolates per-instruction
// dispatch, the cost the threaded engine attacks. Same kernel, same
// simulated cycles - only host time differs between the two rows.

IrFunction BuildDispatchKernel() {
  IrBuilder b("dispatch");
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(2048), 1);
  ValueId x = b.Mul(loop.iv, b.Const(0x9e3779b9));
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kLShr, x, b.Const(13)));
  x = b.Add(x, loop.iv);
  x = b.Bin(IrOp::kXor, x, b.Bin(IrOp::kShl, x, b.Const(7)));
  b.EndLoop(loop);
  b.Ret();
  return b.Finish();
}

void RunIrDispatch(benchmark::State& state, IrEngine engine) {
  SimFixtures f;
  StackAllocator stack(f.enclave.get(), 1 * kMiB, "bench-stack");
  Interpreter interp(f.enclave.get(), f.heap.get(), &stack);
  interp.set_engine(engine);
  const IrFunction fn = BuildDispatchKernel();
  Cpu& cpu = f.enclave->main_cpu();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Run(fn, cpu, {}, /*max_steps=*/UINT64_MAX));
  }
  state.SetItemsProcessed(static_cast<int64_t>(interp.stats().steps));
}

void BM_IrDispatchReference(benchmark::State& state) {
  RunIrDispatch(state, IrEngine::kReference);
}
BENCHMARK(BM_IrDispatchReference);

void BM_IrDispatchThreaded(benchmark::State& state) {
  RunIrDispatch(state, IrEngine::kThreaded);
}
BENCHMARK(BM_IrDispatchThreaded);

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  sgxb::PrintReproHeader("micro_primitives", sgxb::MachineSpec{});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
