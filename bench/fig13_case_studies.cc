// Figure 13 reproduction: throughput-latency behaviour and peak memory of
// the three networked case studies (Memcached, Apache-httpd, Nginx), each
// under native SGX / MPX / ASan / SGXBounds.
//
// Method: the simulator measures each server's per-request service demand at
// a given connection count (real policy-instrumented servers over the
// simulated enclave); a closed-loop queueing model turns demand into the
// throughput/latency pairs memaslap/ab would report (see apps/netserver.h).
//
// Paper expectation (SS7):
//   Memcached: SGX ~60-75% of native; ASan ~= SGX; SGXBounds ~= SGX;
//              MPX collapses (bounds tables blow the working set past EPC);
//              peak memory SGX 71.6 MB / MPX 641 MB / ASan 649 MB / SGXBnd 71.8 MB
//   Apache:    SGXBounds on par with SGX; ASan ~2% worse; MPX degrades with
//              client count; SGXBounds memory +50% (pool-page artifact)
//   Nginx:     ASan worst (~65-70% of SGX throughput); SGXBounds 80-85%;
//              peak memory SGX 0.9 MB / ASan 893 MB / SGXBnd 1.0 MB

#include "bench/bench_util.h"
#include "src/apps/httpd.h"
#include "src/apps/memcached.h"
#include "src/apps/netserver.h"
#include "src/apps/nginx_app.h"

namespace sgxb {
namespace {

struct ServicePoint {
  double service_cycles = 0;
  uint64_t peak_vm = 0;
  bool crashed = false;
  std::string trap;
};

// --- Memcached ------------------------------------------------------------------

ServicePoint MeasureMemcached(PolicyKind kind, uint32_t clients, uint64_t preload_items,
                              uint32_t value_bytes, uint32_t requests) {
  MachineSpec spec;
  ServicePoint point;
  const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    Memcached<P> cache(&env.policy, &env.cpu, &shim);
    Rng rng(7);
    for (uint64_t k = 0; k < preload_items; ++k) {
      cache.Set(k, value_bytes);
    }
    const uint64_t before = env.cpu.cycles();
    for (uint32_t q = 0; q < requests; ++q) {
      const uint64_t key = rng.NextZipf(preload_items, 0.9);
      if (rng.NextBounded(10) == 0) {
        cache.ServeRequest("S " + std::to_string(key) + " " + std::to_string(value_bytes));
      } else {
        cache.ServeRequest("G " + std::to_string(key));
      }
      (void)clients;
    }
    point.service_cycles =
        static_cast<double>(env.cpu.cycles() - before) / static_cast<double>(requests);
  });
  point.peak_vm = r.peak_vm_bytes;
  point.crashed = r.crashed;
  point.trap = r.trap_message;
  return point;
}

// --- Apache httpd ------------------------------------------------------------------

ServicePoint MeasureHttpd(PolicyKind kind, uint32_t clients, uint32_t requests) {
  MachineSpec spec;
  ServicePoint point;
  const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    Httpd<P> server(&env.policy, &env.cpu, &shim);
    for (uint32_t c = 0; c < clients; ++c) {
      server.OpenConnection();
    }
    const uint64_t before = env.cpu.cycles();
    for (uint32_t q = 0; q < requests; ++q) {
      server.ServeGet(q % clients, "GET / HTTP/1.1\r\nHost: bench\r\n\r\n");
    }
    point.service_cycles =
        static_cast<double>(env.cpu.cycles() - before) / static_cast<double>(requests);
  });
  point.peak_vm = r.peak_vm_bytes;
  point.crashed = r.crashed;
  point.trap = r.trap_message;
  return point;
}

// --- Nginx ---------------------------------------------------------------------------

ServicePoint MeasureNginx(PolicyKind kind, uint32_t requests) {
  MachineSpec spec;
  ServicePoint point;
  const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{}, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    NginxApp<P> server(&env.policy, &env.cpu, &shim);
    const uint64_t before = env.cpu.cycles();
    for (uint32_t q = 0; q < requests; ++q) {
      server.ServeGet("GET /page.html HTTP/1.1\r\n\r\n");
    }
    point.service_cycles =
        static_cast<double>(env.cpu.cycles() - before) / static_cast<double>(requests);
  });
  point.peak_vm = r.peak_vm_bytes;
  point.crashed = r.crashed;
  point.trap = r.trap_message;
  return point;
}

std::string Cell(const ServicePoint& p, uint32_t clients, uint32_t servers) {
  if (p.crashed) {
    return "crash";
  }
  const CurvePoint cp = ClosedLoopPoint(clients, servers, p.service_cycles);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f kops @ %.2f ms", cp.kops_per_sec, cp.latency_ms);
  return buf;
}

// The paper only published numbers for its four schemes; plugged-in schemes
// get a "-" in the paper column.
std::string PaperNumber(PolicyKind kind,
                        std::initializer_list<std::pair<PolicyKind, const char*>> table) {
  for (const auto& entry : table) {
    if (entry.first == kind) {
      return entry.second;
    }
  }
  return "-";
}

std::vector<std::string> SchemeHead(const std::vector<PolicyKind>& policies,
                                    const char* first) {
  std::vector<std::string> head{first};
  for (PolicyKind kind : policies) {
    head.emplace_back(PolicyName(kind));
  }
  return head;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  uint64_t mc_items = 80000;     // ~80 MB working set with 1 KB values
  uint64_t mc_requests = 20000;
  uint64_t web_requests = 2000;
  parser.AddUint("mc_items", &mc_items, "memcached preloaded items");
  parser.AddUint("mc_requests", &mc_requests, "memcached measured requests");
  parser.AddUint("web_requests", &web_requests, "httpd/nginx measured requests");
  AddPoliciesFlag(parser);
  // Case studies run every registered scheme by default (plugged-in schemes
  // included), so a new policy shows up here without editing this driver.
  PoliciesFlag() = "all";
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();
  const size_t n = policies.size();
  const uint32_t bench_threads = ResolveBenchThreads();

  PrintReproHeader("fig13_case_studies", MachineSpec{});
  std::printf("Figure 13: case studies (throughput @ latency per client count, and peak "
              "memory)\n\n");

  // --- Memcached -------------------------------------------------------------
  {
    std::printf("== Memcached (memaslap-like: 90%% GET / 10%% SET, 1 KB values, zipf) ==\n");
    Table t(SchemeHead(policies, "clients"));
    std::vector<ServicePoint> points(n);
    ParallelFor(n, bench_threads, [&](size_t k) {
      std::fprintf(stderr, "[fig13] memcached %s...\n", PolicyName(policies[k]));
      points[k] = MeasureMemcached(policies[k], 8, mc_items, 1024,
                                   static_cast<uint32_t>(mc_requests));
    });
    for (uint32_t clients : {1u, 4u, 8u, 16u, 32u}) {
      std::vector<std::string> row{std::to_string(clients)};
      for (size_t k = 0; k < n; ++k) {
        row.push_back(Cell(points[k], clients, 4));
      }
      t.AddRow(row);
    }
    t.Print();
    Table mem({"scheme", "peak memory", "paper"});
    for (size_t k = 0; k < n; ++k) {
      mem.AddRow({PolicyName(policies[k]), FormatBytes(points[k].peak_vm),
                  PaperNumber(policies[k], {{PolicyKind::kNative, "71.6 MB"},
                                            {PolicyKind::kMpx, "641 MB"},
                                            {PolicyKind::kAsan, "649 MB"},
                                            {PolicyKind::kSgxBounds, "71.8 MB"}})});
    }
    mem.Print();
  }

  // --- Apache ---------------------------------------------------------------
  {
    std::printf("\n== Apache httpd (ab-like GETs; 25 worker threads; per-client pools) ==\n");
    Table t(SchemeHead(policies, "clients"));
    const uint32_t client_counts[] = {8, 32, 64, 128};
    std::vector<std::vector<ServicePoint>> per_kind(n);
    for (size_t k = 0; k < n; ++k) {
      per_kind[k].resize(4);
    }
    ParallelFor(n * 4, bench_threads, [&](size_t job) {
      const size_t k = job / 4;
      const size_t ci = job % 4;
      const uint32_t clients = client_counts[ci];
      std::fprintf(stderr, "[fig13] httpd %s c=%u...\n", PolicyName(policies[k]), clients);
      per_kind[k][ci] = MeasureHttpd(policies[k], clients,
                                     static_cast<uint32_t>(web_requests));
    });
    for (size_t ci = 0; ci < 4; ++ci) {
      std::vector<std::string> row{std::to_string(client_counts[ci])};
      for (size_t k = 0; k < n; ++k) {
        row.push_back(Cell(per_kind[k][ci], client_counts[ci], kHttpdWorkers));
      }
      t.AddRow(row);
    }
    t.Print();
    Table mem({"scheme", "peak memory (64 clients)", "paper"});
    for (size_t k = 0; k < n; ++k) {
      mem.AddRow({PolicyName(policies[k]), FormatBytes(per_kind[k][2].peak_vm),
                  PaperNumber(policies[k], {{PolicyKind::kNative, "15.4 MB"},
                                            {PolicyKind::kMpx, "144 MB"},
                                            {PolicyKind::kAsan, "598 MB"},
                                            {PolicyKind::kSgxBounds, "23.2 MB"}})});
    }
    mem.Print();
  }

  // --- Nginx ----------------------------------------------------------------
  {
    std::printf("\n== Nginx (ab-like GETs of a 200 KB page; single worker) ==\n");
    Table t(SchemeHead(policies, "clients"));
    std::vector<ServicePoint> points(n);
    ParallelFor(n, bench_threads, [&](size_t k) {
      std::fprintf(stderr, "[fig13] nginx %s...\n", PolicyName(policies[k]));
      points[k] = MeasureNginx(policies[k], static_cast<uint32_t>(web_requests));
    });
    for (uint32_t clients : {1u, 2u, 4u, 8u}) {
      std::vector<std::string> row{std::to_string(clients)};
      for (size_t k = 0; k < n; ++k) {
        row.push_back(Cell(points[k], clients, 1));
      }
      t.AddRow(row);
    }
    t.Print();
    Table mem({"scheme", "peak memory", "paper"});
    for (size_t k = 0; k < n; ++k) {
      mem.AddRow({PolicyName(policies[k]), FormatBytes(points[k].peak_vm),
                  PaperNumber(policies[k], {{PolicyKind::kNative, "0.9 MB"},
                                            {PolicyKind::kMpx, "37.0 MB"},
                                            {PolicyKind::kAsan, "893 MB"},
                                            {PolicyKind::kSgxBounds, "1.0 MB"}})});
    }
    mem.Print();
  }
  return 0;
}
