// Table 4 reproduction: RIPE security benchmark results inside the enclave.
//
// Paper expectation:
//   MPX        2/16 prevented (only direct stack smashes; libc loses bounds)
//   ASan       8/16 prevented (all but the in-struct overflows)
//   SGXBounds  8/16 prevented (same 8; object-granularity bounds)

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/ripe/ripe.h"

int main() {
  using namespace sgxb;
  PrintReproHeader("table4_ripe", MachineSpec{});
  std::printf("Table 4: RIPE attack matrix (16 attacks surviving under SGX)\n");
  std::printf("paper expectation: MPX 2/16, ASan 8/16, SGXBounds 8/16\n\n");

  const Defense defenses[] = {Defense::kNone, Defense::kMpx, Defense::kAsan,
                              Defense::kSgxBounds};

  Table matrix({"attack", "native", "MPX", "ASan", "SGXBounds"});
  for (const auto& scenario : RipeScenarios()) {
    std::vector<std::string> cells{scenario.name};
    for (Defense d : defenses) {
      const AttackOutcome outcome = RunAttack(scenario, d);
      cells.push_back(outcome.prevented ? "prevented"
                                        : (outcome.succeeded ? "HIJACKED" : "no effect"));
    }
    matrix.AddRow(std::move(cells));
  }
  matrix.Print();

  Table summary({"defense", "prevented", "expected (paper)"});
  summary.AddRow({"native", std::to_string(RunRipeSuite(Defense::kNone).prevented) + "/16",
                  "0/16"});
  summary.AddRow({"MPX", std::to_string(RunRipeSuite(Defense::kMpx).prevented) + "/16",
                  "2/16"});
  summary.AddRow({"ASan", std::to_string(RunRipeSuite(Defense::kAsan).prevented) + "/16",
                  "8/16"});
  summary.AddRow({"SGXBounds",
                  std::to_string(RunRipeSuite(Defense::kSgxBounds).prevented) + "/16",
                  "8/16"});
  summary.AddRow(
      {"SGXBounds+narrowing (SS8 ext.)",
       std::to_string(RunRipeSuite(Defense::kSgxBounds, nullptr, true).prevented) + "/16",
       "n/a (future work)"});
  std::printf("\n");
  summary.Print();
  std::printf("\nThe last row is this repo's implementation of the paper's SS8 future-work\n"
              "item: bounds narrowing on struct-field pointers catches the 8 intra-object\n"
              "overflows that object-granularity bounds miss.\n");
  return 0;
}
