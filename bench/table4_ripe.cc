// Table 4 reproduction: RIPE security benchmark results inside the enclave.
//
// Paper expectation:
//   MPX        2/16 prevented (only direct stack smashes; libc loses bounds)
//   ASan       8/16 prevented (all but the in-struct overflows)
//   SGXBounds  8/16 prevented (same 8; object-granularity bounds)
//
// Columns come from the scheme registry, so plugged-in schemes (l4ptr)
// appear with their own declared expectation without edits here.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/ripe/ripe.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string policies = "all";
  {
    std::string help = "comma-separated schemes to test (";
    for (const SchemeDescriptor* d : AllSchemes()) {
      help += d->id;
      help += "|";
    }
    help += "paper|all)";
    parser.AddString("policies", &policies, help);
  }
  parser.Parse(argc, argv);
  std::string error;
  const std::vector<PolicyKind> kinds = ParsePolicyList(policies, &error);
  if (kinds.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  std::vector<const SchemeDescriptor*> schemes;
  for (const PolicyKind kind : kinds) {
    schemes.push_back(&SchemeOf(kind));
  }

  PrintReproHeader("table4_ripe", MachineSpec{});
  std::printf("Table 4: RIPE attack matrix (16 attacks surviving under SGX)\n");
  std::printf("paper expectation: MPX 2/16, ASan 8/16, SGXBounds 8/16\n\n");

  std::vector<std::string> head{"attack"};
  for (const SchemeDescriptor* d : schemes) {
    head.emplace_back(d->name);
  }
  Table matrix(head);
  for (const auto& scenario : RipeScenarios()) {
    std::vector<std::string> cells{scenario.name};
    for (const SchemeDescriptor* d : schemes) {
      const AttackOutcome outcome = RunAttack(scenario, d->kind);
      cells.push_back(outcome.prevented ? "prevented"
                                        : (outcome.succeeded ? "HIJACKED" : "no effect"));
    }
    matrix.AddRow(std::move(cells));
  }
  matrix.Print();

  Table summary({"defense", "prevented", "expected"});
  for (const SchemeDescriptor* d : schemes) {
    const RipeSummary plain = RunRipeSuite(d->kind);
    summary.AddRow({d->name, std::to_string(plain.prevented) + "/16",
                    std::to_string(d->ripe_expected_prevented) + "/16" +
                        (d->in_paper_suite ? " (paper)" : " (declared)")});
    // The SS8 future-work extension: schemes whose defense can narrow bounds
    // onto struct fields catch the intra-object overflows as well. Only
    // printed when narrowing actually changes the outcome.
    const RipeSummary narrowed = RunRipeSuite(d->kind, nullptr, true);
    if (narrowed.prevented != plain.prevented) {
      summary.AddRow({std::string(d->name) + "+narrowing (SS8 ext.)",
                      std::to_string(narrowed.prevented) + "/16", "n/a (future work)"});
    }
  }
  std::printf("\n");
  summary.Print();
  std::printf("\nA '+narrowing' row is this repo's implementation of the paper's SS8\n"
              "future-work item: bounds narrowing on struct-field pointers catches the\n"
              "intra-object overflows that object-granularity bounds miss.\n");
  return 0;
}
