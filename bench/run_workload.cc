// General-purpose experiment driver: run any registered workload under any
// scheme/size/thread-count/EPC configuration and print the full counter
// breakdown. The "swiss-army knife" the figure binaries are specializations
// of; handy for exploring the simulator interactively:
//
//   ./build/bench/run_workload --list
//   ./build/bench/run_workload --workload=kmeans --policy=mpx --size=M \
//       --threads=8 --epc_mb=94
//   ./build/bench/run_workload --workload=mcf --policy=sgxbounds --no_enclave

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string workload = "kmeans";
  std::string policy = "sgxbounds";
  std::string size = "S";
  int64_t threads = 1;
  uint64_t epc_mb = 94;
  bool no_enclave = false;
  bool list = false;
  bool no_opts = false;
  // Strict choice: an unknown name dies at parse time listing every
  // registered spelling, instead of running the default workload.
  std::vector<std::string> workload_choices;
  for (const WorkloadInfo* w : WorkloadRegistry::Instance().All()) {
    workload_choices.push_back(w->name);
  }
  parser.AddChoice("workload", &workload, workload_choices, "workload name (see --list)");
  parser.AddChoice("policy", &policy, PolicyChoices(), "memory-safety scheme");
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  parser.AddInt("threads", &threads, "worker threads");
  parser.AddUint("epc_mb", &epc_mb, "usable EPC size in MiB");
  parser.AddBool("no_enclave", &no_enclave, "run outside the enclave (no EPC/MEE)");
  parser.AddBool("no_opts", &no_opts, "disable every check optimization (same as --opts=none)");
  parser.AddBool("list", &list, "list registered workloads and exit");
  AddOptsFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  auto& registry = WorkloadRegistry::Instance();
  if (list) {
    Table t({"workload", "suite", "multithreaded"});
    for (const WorkloadInfo* w : registry.All()) {
      t.AddRow({w->name, w->suite, w->multithreaded ? "yes" : "no"});
    }
    t.Print();
    return 0;
  }

  const WorkloadInfo* w = registry.Find(workload);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n", workload.c_str());
    return 2;
  }
  const PolicyKind kind = ParsePolicyKind(policy);

  MachineSpec spec;
  spec.enclave_mode = !no_enclave;
  spec.epc_bytes = epc_mb * kMiB;
  spec.threads = static_cast<uint32_t>(threads);
  PrintReproHeader("run_workload", spec);
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = static_cast<uint32_t>(threads);
  // Start from the scheme's registry defaults (paper four: the SS4.4 pair;
  // shadow: all five pipeline passes), then apply --opts / --no_opts.
  PolicyOptions options = ResolveOptions(SchemeOf(kind).default_options);
  if (no_opts) {
    options.opt_safe_elision = false;
    options.opt_hoist_checks = false;
    options.opt_redundant_elision = false;
    options.opt_pattern_loops = false;
    options.opt_infield_elision = false;
  }

  // Through the shared job runner so --selftime / --json see this run too.
  const RunResult r = RunBenchJobs(
      {{w->name + "/" + PolicyName(kind), [&] { return w->run(kind, spec, options, cfg); }}},
      "run_workload")[0];

  std::printf("%s / %s / size %s / %lld thread(s) / %s, EPC %llu MiB\n", w->name.c_str(),
              PolicyName(kind), size.c_str(), static_cast<long long>(threads),
              no_enclave ? "outside enclave" : "inside enclave",
              static_cast<unsigned long long>(epc_mb));
  if (r.crashed) {
    std::printf("CRASHED: %s\n", r.trap_message.c_str());
    return 1;
  }
  const PerfCounters& c = r.counters;
  Table t({"metric", "value"});
  auto row = [&](const char* name, uint64_t v) { t.AddRow({name, std::to_string(v)}); };
  row("cycles", r.cycles);
  row("instructions", c.instructions());
  row("app loads", c.loads);
  row("app stores", c.stores);
  row("metadata loads", c.metadata_loads);
  row("metadata stores", c.metadata_stores);
  row("bounds checks", c.bounds_checks);
  row("L1 accesses", c.l1_accesses);
  row("L1 misses", c.l1_misses);
  row("LLC accesses", c.llc_accesses);
  row("LLC misses", c.llc_misses);
  row("EPC faults", c.epc_faults);
  row("minor faults", c.minor_faults);
  t.AddRow({"peak virtual memory", FormatBytes(r.peak_vm_bytes)});
  // Check-pipeline statistics, for bodies that ran IR instrumentation (the
  // "ir" suite; zero and omitted elsewhere).
  if (r.pass_stats.Any()) {
    const CheckPassStats& p = r.pass_stats;
    row("checks inserted", p.checks_inserted);
    row("checks elided (safe)", p.checks_elided_safe);
    row("checks elided (redundant)", p.checks_elided_redundant);
    row("checks elided (in-field)", p.checks_elided_infield);
    row("checks hoisted (SCEV)", p.checks_hoisted);
    row("checks hoisted (pattern)", p.checks_pattern_hoisted);
  }
  // Scheme-specific extra metric (e.g. MPX's bounds-table count), declared
  // by the scheme's registry entry.
  const SchemeDescriptor& scheme = SchemeOf(kind);
  if (scheme.extra_metric != nullptr) {
    row(scheme.extra_metric_label, scheme.extra_metric(r));
  }
  t.Print();
  return 0;
}
