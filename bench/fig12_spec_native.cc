// Figure 12 reproduction: SPEC CPU2006 OUTSIDE the enclave (normal,
// unconstrained environment) - performance overhead over native execution.
//
// Paper expectation (SS6.7): without the EPC bottleneck the SGXBounds
// cache-layout advantage disappears: SGXBounds ~1.55x is WORSE than ASan
// ~1.38x (and comparable to Baggy Bounds' 1.7x / Low Fat Pointers' 1.43x).
// This is the paper's honesty check: SGXBounds is a win inside enclaves,
// not a universal win.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string size = "L";
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  {
    MachineSpec header_spec;
    header_spec.enclave_mode = false;
    PrintReproHeader("fig12_spec_native", header_spec);
  }
  std::printf("Figure 12: SPEC CPU2006 outside the enclave (no EPC, no MEE)\n");
  std::printf("paper expectation: gmean SGXBounds ~1.55x vs ASan ~1.38x (SGXBounds "
              "loses its advantage outside SGX)\n");

  MachineSpec spec;
  spec.enclave_mode = false;
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = 1;

  const std::vector<SuiteRow> rows =
      RunSuiteRows(WorkloadRegistry::Instance().BySuite("spec"), spec, cfg, "fig12", policies);
  PrintOverheadTables("Fig.12 SPEC outside enclave (" + size + ")", rows);
  return 0;
}
