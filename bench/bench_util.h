// Shared reporting helpers for the figure/table reproduction binaries.
//
// Every binary prints: (1) the paper's expected numbers for that experiment,
// (2) the measured rows in the same format, so EXPERIMENTS.md comparisons
// are a copy-paste. Crashed runs (MPX OOM) print as "crash", matching the
// missing bars in the paper's figures.

#ifndef SGXBOUNDS_BENCH_BENCH_UTIL_H_
#define SGXBOUNDS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/ir_engine.h"
#include "src/common/host_parallel.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/trace/trace_format.h"
#include "src/workloads/workload.h"

namespace sgxb {

// --- host-parallel driver ---------------------------------------------------------
//
// Each (workload, policy) simulation is deterministic and owns its Enclave,
// so independent runs are dispatched across host threads (--bench_threads)
// and collected into slots indexed by job order: stdout is byte-identical
// for any thread count.

inline int64_t& BenchThreadsFlag() {
  static int64_t v = 0;  // 0 = hardware concurrency
  return v;
}

inline bool& SelftimeFlag() {
  static bool v = false;
  return v;
}

inline bool& JsonFlag() {
  static bool v = false;
  return v;
}

// Registers the shared driver flags; call before FlagParser::Parse.
inline void AddBenchDriverFlags(FlagParser& parser) {
  parser.AddInt("bench_threads", &BenchThreadsFlag(),
                "host threads for dispatching independent simulations "
                "(0 = hardware concurrency)");
  parser.AddBool("selftime", &SelftimeFlag(),
                 "print host wall-clock per simulation to stderr");
  parser.AddBool("json", &JsonFlag(),
                 "write measured rows + host timings to BENCH_<binary>.json");
  parser.AddCallback(
      "ir_engine",
      [](const std::string& value) { return ParseIrEngine(value, &DefaultIrEngine()); },
      "IR execution engine for interpreter-driven workloads",
      IrEngineName(DefaultIrEngine()), {"reference", "threaded"});
}

inline uint32_t ResolveBenchThreads() {
  const int64_t v = BenchThreadsFlag();
  return v <= 0 ? HostHardwareThreads() : static_cast<uint32_t>(v);
}

// --- machine-readable output (--json) ---------------------------------------------
//
// Every measured row is also recorded host-side (label, simulated result,
// host wall-clock) and, under --json, rewritten to BENCH_<binary>.json after
// each job batch so the file is complete whenever the process exits. The
// JSON is a host-measurement artifact: simulated stdout stays engine- and
// flag-invariant.

struct BenchJsonRow {
  std::string label;
  std::string tag;
  RunResult result;
  double host_ms = 0;
};

struct BenchJsonState {
  std::mutex mu;
  std::string binary = "bench";
  std::vector<BenchJsonRow> rows;
  double total_ms = 0;
};

inline BenchJsonState& JsonState() {
  static BenchJsonState s;
  return s;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Rewrites BENCH_<binary>.json from the accumulated rows. Called with
// JsonState().mu held.
inline void WriteBenchJsonLocked() {
  BenchJsonState& s = JsonState();
  const std::string path = "BENCH_" + s.binary + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"%s\",\n", JsonEscape(s.binary).c_str());
  std::fprintf(f, "  \"ir_engine\": \"%s\",\n", IrEngineName(DefaultIrEngine()));
  std::fprintf(f, "  \"bench_threads\": %u,\n",
               BenchThreadsFlag() <= 0 ? HostHardwareThreads()
                                       : static_cast<uint32_t>(BenchThreadsFlag()));
  std::fprintf(f, "  \"selftime_total_seconds\": %.3f,\n", s.total_ms / 1000.0);
  std::fprintf(f, "  \"rows\": [");
  for (size_t i = 0; i < s.rows.size(); ++i) {
    const BenchJsonRow& row = s.rows[i];
    std::fprintf(f,
                 "%s\n    {\"label\": \"%s\", \"tag\": \"%s\", \"policy\": \"%s\", "
                 "\"cycles\": %llu, \"peak_vm_bytes\": %llu, \"crashed\": %s, "
                 "\"trap\": \"%s\", \"host_ms\": %.3f}",
                 i == 0 ? "" : ",", JsonEscape(row.label).c_str(),
                 JsonEscape(row.tag).c_str(), PolicyName(row.result.kind),
                 static_cast<unsigned long long>(row.result.cycles),
                 static_cast<unsigned long long>(row.result.peak_vm_bytes),
                 row.result.crashed ? "true" : "false",
                 row.result.crashed ? TrapKindName(row.result.trap) : "",
                 row.host_ms);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

// Reproducibility banner: printed first by every figure/table binary so two
// result sets are comparable at a glance. The cost-table id is the FNV hash
// of every cycle price in the model (see CostTableId); runs with different
// ids are not comparable.
inline void PrintReproHeader(const char* binary, const MachineSpec& spec) {
  JsonState().binary = binary;
  const SimConfig defaults;
  std::printf(
      "[repro] %s: trace_version=%u cost_table=%016llx epc=%llu MiB enclave=%s "
      "seed=%llu sim_threads=%u bench_threads=%u\n",
      binary, kTraceVersion,
      static_cast<unsigned long long>(CostTableId(defaults.costs)),
      static_cast<unsigned long long>(spec.epc_bytes / kMiB),
      spec.enclave_mode ? "on" : "off", static_cast<unsigned long long>(spec.seed),
      spec.threads, ResolveBenchThreads());
}

// One schedulable simulation; `label` feeds progress/--selftime lines.
struct BenchJob {
  std::string label;
  std::function<RunResult()> run;
};

// Runs all jobs (possibly concurrently) and returns results in job order.
inline std::vector<RunResult> RunBenchJobs(const std::vector<BenchJob>& jobs,
                                           const char* tag) {
  using Clock = std::chrono::steady_clock;
  std::vector<RunResult> out(jobs.size());
  const uint32_t threads = ResolveBenchThreads();
  if (jobs.size() > 1) {
    std::fprintf(stderr, "[%s] dispatching %zu runs over %u host thread(s)\n", tag,
                 jobs.size(), threads);
  }
  std::vector<double> host_ms(jobs.size(), 0.0);
  const auto suite_start = Clock::now();
  ParallelFor(jobs.size(), threads, [&](size_t i) {
    std::fprintf(stderr, "[%s] running %s...\n", tag, jobs[i].label.c_str());
    const auto start = Clock::now();
    out[i] = jobs[i].run();
    host_ms[i] = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (SelftimeFlag()) {
      std::fprintf(stderr, "[selftime] %s: %.1f ms\n", jobs[i].label.c_str(), host_ms[i]);
    }
  });
  const double total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - suite_start).count();
  if (SelftimeFlag()) {
    std::fprintf(stderr, "[selftime] %s total: %.1f ms (%u host threads)\n", tag,
                 jobs.size() > 0 ? total_ms : 0.0, threads);
  }
  {
    BenchJsonState& s = JsonState();
    std::lock_guard<std::mutex> lock(s.mu);
    for (size_t i = 0; i < jobs.size(); ++i) {
      s.rows.push_back({jobs[i].label, tag, out[i], host_ms[i]});
    }
    s.total_ms += total_ms;
    if (JsonFlag()) {
      WriteBenchJsonLocked();
    }
  }
  return out;
}

struct SuiteRow {
  std::string name;
  RunResult native;
  RunResult mpx;
  RunResult asan;
  RunResult sgxb;
};

inline std::string PerfCell(const RunResult& r, const RunResult& base) {
  if (r.crashed) {
    return std::string("crash(") + TrapKindName(r.trap) + ")";
  }
  return FormatRatio(r.CyclesRatioOver(base));
}

inline std::string MemCell(const RunResult& r, const RunResult& base) {
  if (r.crashed) {
    return "-";
  }
  return FormatRatio(r.VmRatioOver(base));
}

// Prints the Fig. 7/11-style table: per-benchmark performance and memory
// ratios over native SGX, with a gmean row (crashes excluded, as the paper's
// gmean necessarily does).
inline void PrintOverheadTables(const std::string& title, const std::vector<SuiteRow>& rows) {
  std::printf("\n== %s : performance overhead over native SGX ==\n", title.c_str());
  Table perf({"benchmark", "MPX", "ASan", "SGXBounds"});
  std::vector<double> gm_mpx;
  std::vector<double> gm_asan;
  std::vector<double> gm_sgxb;
  for (const auto& row : rows) {
    perf.AddRow({row.name, PerfCell(row.mpx, row.native), PerfCell(row.asan, row.native),
                 PerfCell(row.sgxb, row.native)});
    if (!row.mpx.crashed) {
      gm_mpx.push_back(row.mpx.CyclesRatioOver(row.native));
    }
    if (!row.asan.crashed) {
      gm_asan.push_back(row.asan.CyclesRatioOver(row.native));
    }
    if (!row.sgxb.crashed) {
      gm_sgxb.push_back(row.sgxb.CyclesRatioOver(row.native));
    }
  }
  perf.AddSeparator();
  perf.AddRow({"gmean", FormatRatio(GeoMean(gm_mpx)), FormatRatio(GeoMean(gm_asan)),
               FormatRatio(GeoMean(gm_sgxb))});
  perf.Print();

  std::printf("\n== %s : peak virtual memory over native SGX ==\n", title.c_str());
  Table mem({"benchmark", "native MB", "MPX", "ASan", "SGXBounds"});
  std::vector<double> mm_mpx;
  std::vector<double> mm_asan;
  std::vector<double> mm_sgxb;
  for (const auto& row : rows) {
    mem.AddRow({row.name, FormatBytes(row.native.peak_vm_bytes),
                MemCell(row.mpx, row.native), MemCell(row.asan, row.native),
                MemCell(row.sgxb, row.native)});
    if (!row.mpx.crashed) {
      mm_mpx.push_back(row.mpx.VmRatioOver(row.native));
    }
    if (!row.asan.crashed) {
      mm_asan.push_back(row.asan.VmRatioOver(row.native));
    }
    if (!row.sgxb.crashed) {
      mm_sgxb.push_back(row.sgxb.VmRatioOver(row.native));
    }
  }
  mem.AddSeparator();
  mem.AddRow({"gmean", "", FormatRatio(GeoMean(mm_mpx)), FormatRatio(GeoMean(mm_asan)),
              FormatRatio(GeoMean(mm_sgxb))});
  mem.Print();
}

// Assembles one SuiteRow from four policy results ordered as kAllPolicies.
inline SuiteRow MakeSuiteRow(const std::string& name, const RunResult* results) {
  SuiteRow row;
  row.name = name;
  row.native = results[0];
  row.mpx = results[1];
  row.asan = results[2];
  row.sgxb = results[3];
  return row;
}

// Runs every (workload, policy) pair of the suite, fanned out across host
// threads, and returns rows in workload order.
inline std::vector<SuiteRow> RunSuiteRows(const std::vector<const WorkloadInfo*>& workloads,
                                          const MachineSpec& spec, const WorkloadConfig& cfg,
                                          const char* tag) {
  std::vector<BenchJob> jobs;
  jobs.reserve(workloads.size() * 4);
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : kAllPolicies) {
      jobs.push_back({w->name + "/" + PolicyName(kind),
                      [w, kind, spec, cfg] { return w->run(kind, spec, PolicyOptions{}, cfg); }});
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, tag);
  std::vector<SuiteRow> rows;
  rows.reserve(workloads.size());
  for (size_t i = 0; i < workloads.size(); ++i) {
    rows.push_back(MakeSuiteRow(workloads[i]->name, &results[i * 4]));
  }
  return rows;
}

// Runs one workload under the four schemes (concurrently when
// --bench_threads allows).
inline SuiteRow RunAllPolicies(const WorkloadInfo& w, const MachineSpec& spec,
                               const WorkloadConfig& cfg) {
  return RunSuiteRows({&w}, spec, cfg, "bench")[0];
}

// Valid spellings for --size flags; pass to FlagParser::AddChoice so unknown
// classes are rejected at parse time instead of silently running the largest.
inline std::vector<std::string> SizeClassChoices() { return {"XS", "S", "M", "L", "XL"}; }

// Valid spellings for --policy flags (kAllPolicies order is native first).
inline std::vector<std::string> PolicyChoices() { return {"native", "mpx", "asan", "sgxbounds"}; }

inline PolicyKind ParsePolicyKind(const std::string& s) {
  if (s == "native") {
    return PolicyKind::kNative;
  }
  if (s == "mpx") {
    return PolicyKind::kMpx;
  }
  if (s == "asan") {
    return PolicyKind::kAsan;
  }
  if (s == "sgxbounds") {
    return PolicyKind::kSgxBounds;
  }
  std::fprintf(stderr, "invalid policy '%s' (valid: native|mpx|asan|sgxbounds)\n", s.c_str());
  std::exit(2);
}

inline SizeClass ParseSizeClass(const std::string& s) {
  if (s == "XS") {
    return SizeClass::kXS;
  }
  if (s == "S") {
    return SizeClass::kS;
  }
  if (s == "M") {
    return SizeClass::kM;
  }
  if (s == "L") {
    return SizeClass::kL;
  }
  if (s == "XL") {
    return SizeClass::kXL;
  }
  std::fprintf(stderr, "invalid size class '%s' (valid: XS|S|M|L|XL)\n", s.c_str());
  std::exit(2);
}

}  // namespace sgxb

#endif  // SGXBOUNDS_BENCH_BENCH_UTIL_H_
