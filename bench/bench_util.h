// Shared reporting helpers for the figure/table reproduction binaries.
//
// Every binary prints: (1) the paper's expected numbers for that experiment,
// (2) the measured rows in the same format, so EXPERIMENTS.md comparisons
// are a copy-paste. Crashed runs (MPX OOM) print as "crash", matching the
// missing bars in the paper's figures.

#ifndef SGXBOUNDS_BENCH_BENCH_UTIL_H_
#define SGXBOUNDS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flags.h"
#include "src/common/ir_engine.h"
#include "src/common/host_parallel.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/policy/registry.h"
#include "src/trace/trace_format.h"
#include "src/workloads/workload.h"

namespace sgxb {

// --- host-parallel driver ---------------------------------------------------------
//
// Each (workload, policy) simulation is deterministic and owns its Enclave,
// so independent runs are dispatched across host threads (--bench_threads)
// and collected into slots indexed by job order: stdout is byte-identical
// for any thread count.

inline int64_t& BenchThreadsFlag() {
  static int64_t v = 0;  // 0 = hardware concurrency
  return v;
}

inline bool& SelftimeFlag() {
  static bool v = false;
  return v;
}

inline bool& JsonFlag() {
  static bool v = false;
  return v;
}

// Registers the shared driver flags; call before FlagParser::Parse.
inline void AddBenchDriverFlags(FlagParser& parser) {
  parser.AddInt("bench_threads", &BenchThreadsFlag(),
                "host threads for dispatching independent simulations "
                "(0 = hardware concurrency)");
  parser.AddBool("selftime", &SelftimeFlag(),
                 "print host wall-clock per simulation to stderr");
  parser.AddBool("json", &JsonFlag(),
                 "write measured rows + host timings to BENCH_<binary>.json");
  parser.AddCallback(
      "ir_engine",
      [](const std::string& value) { return ParseIrEngine(value, &DefaultIrEngine()); },
      "IR execution engine for interpreter-driven workloads",
      IrEngineName(DefaultIrEngine()), {"reference", "threaded", "jit"});
}

inline uint32_t ResolveBenchThreads() {
  const int64_t v = BenchThreadsFlag();
  return v <= 0 ? HostHardwareThreads() : static_cast<uint32_t>(v);
}

// --- the shared --opts= flag -------------------------------------------------------
//
// Check-optimization pass selection for the scheme-generic pipeline
// (src/ir/opt). The default "default" keeps each scheme's registry defaults
// (paper four: the SS4.4 pair; shadow: all five), so default stdout is
// unchanged. Any other value overrides every pass flag explicitly:
//
//   --opts=none                 no passes
//   --opts=paper                the SS4.4 pair (safe + hoist)
//   --opts=all                  all five passes
//   --opts=safe,redundant,...   exactly the named passes
//
// A flag only takes effect where the scheme's lowering declares the pass
// legal (CheckSchemeLowering supports mask), so e.g. --opts=all still leaves
// ASan/MPX instrumentation untouched except for redundant-check elimination.

inline std::string& OptsFlag() {
  static std::string v = "default";
  return v;
}

inline void AddOptsFlag(FlagParser& parser) {
  parser.AddString("opts", &OptsFlag(),
                   "check-optimization passes: comma list of "
                   "safe|hoist|redundant|pattern|infield, or none|paper|all|default "
                   "(default = each scheme's registry defaults)");
}

// Applies --opts on top of `base` (normally SchemeOf(kind).default_options).
// Unknown pass names print the valid spellings and exit(2).
inline PolicyOptions ResolveOptions(PolicyOptions base) {
  const std::string& csv = OptsFlag();
  if (csv == "default") {
    return base;
  }
  base.opt_safe_elision = false;
  base.opt_hoist_checks = false;
  base.opt_redundant_elision = false;
  base.opt_pattern_loops = false;
  base.opt_infield_elision = false;
  if (csv == "none") {
    return base;
  }
  if (csv == "paper") {
    base.opt_safe_elision = true;
    base.opt_hoist_checks = true;
    return base;
  }
  if (csv == "all") {
    base.opt_safe_elision = true;
    base.opt_hoist_checks = true;
    base.opt_redundant_elision = true;
    base.opt_pattern_loops = true;
    base.opt_infield_elision = true;
    return base;
  }
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item == "safe") {
      base.opt_safe_elision = true;
    } else if (item == "hoist") {
      base.opt_hoist_checks = true;
    } else if (item == "redundant") {
      base.opt_redundant_elision = true;
    } else if (item == "pattern") {
      base.opt_pattern_loops = true;
    } else if (item == "infield") {
      base.opt_infield_elision = true;
    } else {
      std::fprintf(stderr,
                   "invalid --opts item '%s' (valid: safe|hoist|redundant|pattern|"
                   "infield, or none|paper|all|default)\n",
                   item.c_str());
      std::exit(2);
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return base;
}

// --- machine-readable output (--json) ---------------------------------------------
//
// Every measured row is also recorded host-side (label, simulated result,
// host wall-clock) and, under --json, rewritten to BENCH_<binary>.json after
// each job batch so the file is complete whenever the process exits. The
// JSON is a host-measurement artifact: simulated stdout stays engine- and
// flag-invariant.

struct BenchJsonRow {
  std::string label;
  std::string tag;
  RunResult result;
  double host_ms = 0;
};

struct BenchJsonState {
  std::mutex mu;
  std::string binary = "bench";
  std::vector<BenchJsonRow> rows;
  double total_ms = 0;
  // Optional driver-provided summary block (pre-rendered JSON object),
  // emitted as "summary": {...} - see bench/ir_engine.cc for the per-
  // (workload, policy) speedup_vs_reference geomeans.
  std::string summary_json;
};

inline BenchJsonState& JsonState() {
  static BenchJsonState s;
  return s;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Rewrites BENCH_<binary>.json from the accumulated rows. Called with
// JsonState().mu held.
inline void WriteBenchJsonLocked() {
  BenchJsonState& s = JsonState();
  const std::string path = "BENCH_" + s.binary + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"%s\",\n", JsonEscape(s.binary).c_str());
  std::fprintf(f, "  \"ir_engine\": \"%s\",\n", IrEngineName(DefaultIrEngine()));
  std::fprintf(f, "  \"bench_threads\": %u,\n",
               BenchThreadsFlag() <= 0 ? HostHardwareThreads()
                                       : static_cast<uint32_t>(BenchThreadsFlag()));
  std::fprintf(f, "  \"selftime_total_seconds\": %.3f,\n", s.total_ms / 1000.0);
  if (!s.summary_json.empty()) {
    std::fprintf(f, "  \"summary\": %s,\n", s.summary_json.c_str());
  }
  std::fprintf(f, "  \"rows\": [");
  for (size_t i = 0; i < s.rows.size(); ++i) {
    const BenchJsonRow& row = s.rows[i];
    std::fprintf(f,
                 "%s\n    {\"label\": \"%s\", \"tag\": \"%s\", \"policy\": \"%s\", "
                 "\"cycles\": %llu, \"peak_vm_bytes\": %llu, \"crashed\": %s, "
                 "\"trap\": \"%s\", \"host_ms\": %.3f",
                 i == 0 ? "" : ",", JsonEscape(row.label).c_str(),
                 JsonEscape(row.tag).c_str(), PolicyName(row.result.kind),
                 static_cast<unsigned long long>(row.result.cycles),
                 static_cast<unsigned long long>(row.result.peak_vm_bytes),
                 row.result.crashed ? "true" : "false",
                 row.result.crashed ? TrapKindName(row.result.trap) : "",
                 row.host_ms);
    // Check-pipeline statistics, present only for rows whose body ran IR
    // instrumentation (the "ir" suite, the fig10 ablation).
    if (row.result.pass_stats.Any()) {
      const CheckPassStats& p = row.result.pass_stats;
      std::fprintf(f,
                   ", \"checks_inserted\": %llu, \"elided_safe\": %llu, "
                   "\"elided_redundant\": %llu, \"elided_infield\": %llu, "
                   "\"hoisted\": %llu, \"pattern_hoisted\": %llu",
                   static_cast<unsigned long long>(p.checks_inserted),
                   static_cast<unsigned long long>(p.checks_elided_safe),
                   static_cast<unsigned long long>(p.checks_elided_redundant),
                   static_cast<unsigned long long>(p.checks_elided_infield),
                   static_cast<unsigned long long>(p.checks_hoisted),
                   static_cast<unsigned long long>(p.checks_pattern_hoisted));
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

// Installs/refreshes the summary block and rewrites the JSON file (no-op
// without --json, like the row path).
inline void SetBenchJsonSummary(std::string summary_json) {
  BenchJsonState& s = JsonState();
  std::lock_guard<std::mutex> lock(s.mu);
  s.summary_json = std::move(summary_json);
  if (JsonFlag()) {
    WriteBenchJsonLocked();
  }
}

// Reproducibility banner: printed first by every figure/table binary so two
// result sets are comparable at a glance. The cost-table id is the FNV hash
// of every cycle price in the model (see CostTableId); runs with different
// ids are not comparable.
inline void PrintReproHeader(const char* binary, const MachineSpec& spec) {
  JsonState().binary = binary;
  std::printf(
      "[repro] %s: trace_version=%u cost_table=%016llx epc=%llu MiB enclave=%s "
      "seed=%llu sim_threads=%u bench_threads=%u\n",
      binary,
      spec.costs.TransitionsEnabled() ? kTraceVersionTransitions : kTraceVersion,
      static_cast<unsigned long long>(CostTableId(spec.costs)),
      static_cast<unsigned long long>(spec.epc_bytes / kMiB),
      spec.enclave_mode ? "on" : "off", static_cast<unsigned long long>(spec.seed),
      spec.threads, ResolveBenchThreads());
}

// One schedulable simulation; `label` feeds progress/--selftime lines.
struct BenchJob {
  std::string label;
  std::function<RunResult()> run;
};

// Runs all jobs (possibly concurrently) and returns results in job order.
inline std::vector<RunResult> RunBenchJobs(const std::vector<BenchJob>& jobs,
                                           const char* tag) {
  using Clock = std::chrono::steady_clock;
  std::vector<RunResult> out(jobs.size());
  const uint32_t threads = ResolveBenchThreads();
  if (jobs.size() > 1) {
    std::fprintf(stderr, "[%s] dispatching %zu runs over %u host thread(s)\n", tag,
                 jobs.size(), threads);
  }
  std::vector<double> host_ms(jobs.size(), 0.0);
  const auto suite_start = Clock::now();
  ParallelFor(jobs.size(), threads, [&](size_t i) {
    std::fprintf(stderr, "[%s] running %s...\n", tag, jobs[i].label.c_str());
    const auto start = Clock::now();
    out[i] = jobs[i].run();
    host_ms[i] = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (SelftimeFlag()) {
      std::fprintf(stderr, "[selftime] %s: %.1f ms\n", jobs[i].label.c_str(), host_ms[i]);
    }
  });
  const double total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - suite_start).count();
  if (SelftimeFlag()) {
    std::fprintf(stderr, "[selftime] %s total: %.1f ms (%u host threads)\n", tag,
                 jobs.size() > 0 ? total_ms : 0.0, threads);
    // Decode/compile cache statistics for the IR execution engines, when any
    // interpreter ran in this batch (process-wide, cumulative).
    const IrExecStatsSnapshot ir = SnapshotIrExecStats();
    if (ir.decode_hits + ir.decode_misses > 0) {
      std::fprintf(stderr,
                   "[selftime] ir-exec caches: decode %llu hits / %llu misses",
                   static_cast<unsigned long long>(ir.decode_hits),
                   static_cast<unsigned long long>(ir.decode_misses));
      if (ir.jit_hits + ir.jit_compiles + ir.jit_noexec_fallbacks > 0) {
        std::fprintf(stderr,
                     "; jit %llu hits / %llu compiles (%llu bytes, %.2f ms, "
                     "%llu noexec fallbacks)",
                     static_cast<unsigned long long>(ir.jit_hits),
                     static_cast<unsigned long long>(ir.jit_compiles),
                     static_cast<unsigned long long>(ir.jit_compiled_bytes),
                     ir.jit_compile_ns / 1e6,
                     static_cast<unsigned long long>(ir.jit_noexec_fallbacks));
      }
      std::fprintf(stderr, "\n");
    }
  }
  {
    BenchJsonState& s = JsonState();
    std::lock_guard<std::mutex> lock(s.mu);
    for (size_t i = 0; i < jobs.size(); ++i) {
      s.rows.push_back({jobs[i].label, tag, out[i], host_ms[i]});
    }
    s.total_ms += total_ms;
    if (JsonFlag()) {
      WriteBenchJsonLocked();
    }
  }
  return out;
}

// --- the shared --policies= flag ---------------------------------------------------
//
// Every driver that runs a set of schemes accepts --policies=<csv|paper|all>
// and resolves it through the registry (registry.h ParsePolicyList). The
// default is the paper's four schemes so default stdout stays comparable
// with the paper; plugged-in schemes (l4ptr) are opt-in.

inline std::string& PoliciesFlag() {
  static std::string v = "paper";
  return v;
}

inline void AddPoliciesFlag(FlagParser& parser) {
  std::string help = "comma-separated schemes to run (";
  for (const SchemeDescriptor* d : AllSchemes()) {
    help += d->id;
    help += "|";
  }
  help += "paper|all)";
  parser.AddString("policies", &PoliciesFlag(), help);
}

// Resolves the --policies flag; prints the registry's spellings and exits(2)
// on an unknown id.
inline std::vector<PolicyKind> ResolvePolicies() {
  std::string error;
  const std::vector<PolicyKind> kinds = ParsePolicyList(PoliciesFlag(), &error);
  if (kinds.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
  return kinds;
}

// The paper's default scheme set, from the registry.
inline std::vector<PolicyKind> PaperPolicyKinds() {
  std::vector<PolicyKind> kinds;
  for (const SchemeDescriptor* d : PaperSchemes()) {
    kinds.push_back(d->kind);
  }
  return kinds;
}

// One benchmark's results across the selected schemes (policies[i] produced
// results[i]; the registry says which one is the overhead baseline).
struct SuiteRow {
  std::string name;
  std::vector<PolicyKind> policies;
  std::vector<RunResult> results;

  const RunResult& For(PolicyKind kind) const {
    for (size_t i = 0; i < policies.size(); ++i) {
      if (policies[i] == kind) {
        return results[i];
      }
    }
    std::fprintf(stderr, "SuiteRow %s has no %s result\n", name.c_str(), PolicyName(kind));
    std::abort();
  }
};

inline std::string PerfCell(const RunResult& r, const RunResult& base) {
  if (r.crashed) {
    return std::string("crash(") + TrapKindName(r.trap) + ")";
  }
  return FormatRatio(r.CyclesRatioOver(base));
}

inline std::string MemCell(const RunResult& r, const RunResult& base) {
  if (r.crashed) {
    return "-";
  }
  return FormatRatio(r.VmRatioOver(base));
}

// Index of the overhead baseline (the registry's `baseline` scheme) within
// `policies`; falls back to column 0 when the baseline wasn't selected.
inline size_t BaselineIndex(const std::vector<PolicyKind>& policies) {
  for (size_t i = 0; i < policies.size(); ++i) {
    if (SchemeOf(policies[i]).baseline) {
      return i;
    }
  }
  return 0;
}

// Prints the Fig. 7/11-style table: per-benchmark performance and memory
// ratios over native SGX, with a gmean row (crashes excluded, as the paper's
// gmean necessarily does). Columns come from the rows' scheme list - one per
// selected non-baseline scheme, in registry order, so the default four
// produce exactly the paper's MPX | ASan | SGXBounds layout.
inline void PrintOverheadTables(const std::string& title, const std::vector<SuiteRow>& rows) {
  if (rows.empty()) {
    return;
  }
  const std::vector<PolicyKind>& policies = rows[0].policies;
  const size_t base = BaselineIndex(policies);
  std::vector<size_t> cols;  // indices of the non-baseline columns
  for (size_t i = 0; i < policies.size(); ++i) {
    if (i != base) {
      cols.push_back(i);
    }
  }

  std::printf("\n== %s : performance overhead over native SGX ==\n", title.c_str());
  std::vector<std::string> perf_head{"benchmark"};
  for (const size_t c : cols) {
    perf_head.emplace_back(SchemeOf(policies[c]).name);
  }
  Table perf(perf_head);
  std::vector<std::vector<double>> gm(cols.size());
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.name};
    for (size_t k = 0; k < cols.size(); ++k) {
      const RunResult& r = row.results[cols[k]];
      cells.push_back(PerfCell(r, row.results[base]));
      if (!r.crashed) {
        gm[k].push_back(r.CyclesRatioOver(row.results[base]));
      }
    }
    perf.AddRow(cells);
  }
  perf.AddSeparator();
  {
    std::vector<std::string> cells{"gmean"};
    for (size_t k = 0; k < cols.size(); ++k) {
      cells.push_back(FormatRatio(GeoMean(gm[k])));
    }
    perf.AddRow(cells);
  }
  perf.Print();

  std::printf("\n== %s : peak virtual memory over native SGX ==\n", title.c_str());
  std::vector<std::string> mem_head{"benchmark",
                                    std::string(SchemeOf(policies[base]).id) + " MB"};
  for (const size_t c : cols) {
    mem_head.emplace_back(SchemeOf(policies[c]).name);
  }
  Table mem(mem_head);
  std::vector<std::vector<double>> mm(cols.size());
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.name, FormatBytes(row.results[base].peak_vm_bytes)};
    for (size_t k = 0; k < cols.size(); ++k) {
      const RunResult& r = row.results[cols[k]];
      cells.push_back(MemCell(r, row.results[base]));
      if (!r.crashed) {
        mm[k].push_back(r.VmRatioOver(row.results[base]));
      }
    }
    mem.AddRow(cells);
  }
  mem.AddSeparator();
  {
    std::vector<std::string> cells{"gmean", ""};
    for (size_t k = 0; k < cols.size(); ++k) {
      cells.push_back(FormatRatio(GeoMean(mm[k])));
    }
    mem.AddRow(cells);
  }
  mem.Print();
}

// Assembles one SuiteRow from per-policy results ordered as `policies`.
inline SuiteRow MakeSuiteRow(const std::string& name, const RunResult* results,
                             const std::vector<PolicyKind>& policies) {
  SuiteRow row;
  row.name = name;
  row.policies = policies;
  row.results.assign(results, results + policies.size());
  return row;
}

// Runs every (workload, policy) pair of the suite, fanned out across host
// threads, and returns rows in workload order.
inline std::vector<SuiteRow> RunSuiteRows(const std::vector<const WorkloadInfo*>& workloads,
                                          const MachineSpec& spec, const WorkloadConfig& cfg,
                                          const char* tag,
                                          const std::vector<PolicyKind>& policies) {
  std::vector<BenchJob> jobs;
  jobs.reserve(workloads.size() * policies.size());
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : policies) {
      // Each scheme runs at its registry defaults (bit-identical to the old
      // PolicyOptions{} for the paper four, which set none), overridden by
      // --opts when the driver registered it.
      const PolicyOptions options = ResolveOptions(SchemeOf(kind).default_options);
      jobs.push_back({w->name + "/" + PolicyName(kind),
                      [w, kind, spec, cfg, options] { return w->run(kind, spec, options, cfg); }});
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, tag);
  std::vector<SuiteRow> rows;
  rows.reserve(workloads.size());
  for (size_t i = 0; i < workloads.size(); ++i) {
    rows.push_back(MakeSuiteRow(workloads[i]->name, &results[i * policies.size()], policies));
  }
  return rows;
}

inline std::vector<SuiteRow> RunSuiteRows(const std::vector<const WorkloadInfo*>& workloads,
                                          const MachineSpec& spec, const WorkloadConfig& cfg,
                                          const char* tag) {
  return RunSuiteRows(workloads, spec, cfg, tag, PaperPolicyKinds());
}

// Runs one workload under the paper's four schemes (concurrently when
// --bench_threads allows).
inline SuiteRow RunAllPolicies(const WorkloadInfo& w, const MachineSpec& spec,
                               const WorkloadConfig& cfg) {
  return RunSuiteRows({&w}, spec, cfg, "bench")[0];
}

// Valid spellings for --size flags; pass to FlagParser::AddChoice so unknown
// classes are rejected at parse time instead of silently running the largest.
inline std::vector<std::string> SizeClassChoices() { return {"XS", "S", "M", "L", "XL"}; }

// --policy spellings and parsing now come from the scheme registry
// (registry.h: PolicyChoices(), ParsePolicyKind()) - the same id table that
// backs PolicyName, trace headers and JSON keys.

inline SizeClass ParseSizeClass(const std::string& s) {
  if (s == "XS") {
    return SizeClass::kXS;
  }
  if (s == "S") {
    return SizeClass::kS;
  }
  if (s == "M") {
    return SizeClass::kM;
  }
  if (s == "L") {
    return SizeClass::kL;
  }
  if (s == "XL") {
    return SizeClass::kXL;
  }
  std::fprintf(stderr, "invalid size class '%s' (valid: XS|S|M|L|XL)\n", s.c_str());
  std::exit(2);
}

}  // namespace sgxb

#endif  // SGXBOUNDS_BENCH_BENCH_UTIL_H_
