// Shared reporting helpers for the figure/table reproduction binaries.
//
// Every binary prints: (1) the paper's expected numbers for that experiment,
// (2) the measured rows in the same format, so EXPERIMENTS.md comparisons
// are a copy-paste. Crashed runs (MPX OOM) print as "crash", matching the
// missing bars in the paper's figures.

#ifndef SGXBOUNDS_BENCH_BENCH_UTIL_H_
#define SGXBOUNDS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/workloads/workload.h"

namespace sgxb {

struct SuiteRow {
  std::string name;
  RunResult native;
  RunResult mpx;
  RunResult asan;
  RunResult sgxb;
};

inline std::string PerfCell(const RunResult& r, const RunResult& base) {
  if (r.crashed) {
    return std::string("crash(") + TrapKindName(r.trap) + ")";
  }
  return FormatRatio(r.CyclesRatioOver(base));
}

inline std::string MemCell(const RunResult& r, const RunResult& base) {
  if (r.crashed) {
    return "-";
  }
  return FormatRatio(r.VmRatioOver(base));
}

// Prints the Fig. 7/11-style table: per-benchmark performance and memory
// ratios over native SGX, with a gmean row (crashes excluded, as the paper's
// gmean necessarily does).
inline void PrintOverheadTables(const std::string& title, const std::vector<SuiteRow>& rows) {
  std::printf("\n== %s : performance overhead over native SGX ==\n", title.c_str());
  Table perf({"benchmark", "MPX", "ASan", "SGXBounds"});
  std::vector<double> gm_mpx;
  std::vector<double> gm_asan;
  std::vector<double> gm_sgxb;
  for (const auto& row : rows) {
    perf.AddRow({row.name, PerfCell(row.mpx, row.native), PerfCell(row.asan, row.native),
                 PerfCell(row.sgxb, row.native)});
    if (!row.mpx.crashed) {
      gm_mpx.push_back(row.mpx.CyclesRatioOver(row.native));
    }
    if (!row.asan.crashed) {
      gm_asan.push_back(row.asan.CyclesRatioOver(row.native));
    }
    if (!row.sgxb.crashed) {
      gm_sgxb.push_back(row.sgxb.CyclesRatioOver(row.native));
    }
  }
  perf.AddSeparator();
  perf.AddRow({"gmean", FormatRatio(GeoMean(gm_mpx)), FormatRatio(GeoMean(gm_asan)),
               FormatRatio(GeoMean(gm_sgxb))});
  perf.Print();

  std::printf("\n== %s : peak virtual memory over native SGX ==\n", title.c_str());
  Table mem({"benchmark", "native MB", "MPX", "ASan", "SGXBounds"});
  std::vector<double> mm_mpx;
  std::vector<double> mm_asan;
  std::vector<double> mm_sgxb;
  for (const auto& row : rows) {
    mem.AddRow({row.name, FormatBytes(row.native.peak_vm_bytes),
                MemCell(row.mpx, row.native), MemCell(row.asan, row.native),
                MemCell(row.sgxb, row.native)});
    if (!row.mpx.crashed) {
      mm_mpx.push_back(row.mpx.VmRatioOver(row.native));
    }
    if (!row.asan.crashed) {
      mm_asan.push_back(row.asan.VmRatioOver(row.native));
    }
    if (!row.sgxb.crashed) {
      mm_sgxb.push_back(row.sgxb.VmRatioOver(row.native));
    }
  }
  mem.AddSeparator();
  mem.AddRow({"gmean", "", FormatRatio(GeoMean(mm_mpx)), FormatRatio(GeoMean(mm_asan)),
              FormatRatio(GeoMean(mm_sgxb))});
  mem.Print();
}

// Runs one workload under the four schemes.
inline SuiteRow RunAllPolicies(const WorkloadInfo& w, const MachineSpec& spec,
                               const WorkloadConfig& cfg) {
  SuiteRow row;
  row.name = w.name;
  row.native = w.run(PolicyKind::kNative, spec, PolicyOptions{}, cfg);
  row.mpx = w.run(PolicyKind::kMpx, spec, PolicyOptions{}, cfg);
  row.asan = w.run(PolicyKind::kAsan, spec, PolicyOptions{}, cfg);
  row.sgxb = w.run(PolicyKind::kSgxBounds, spec, PolicyOptions{}, cfg);
  return row;
}

inline SizeClass ParseSizeClass(const std::string& s) {
  if (s == "XS") {
    return SizeClass::kXS;
  }
  if (s == "S") {
    return SizeClass::kS;
  }
  if (s == "M") {
    return SizeClass::kM;
  }
  if (s == "XL") {
    return SizeClass::kXL;
  }
  return SizeClass::kL;
}

}  // namespace sgxb

#endif  // SGXBOUNDS_BENCH_BENCH_UTIL_H_
