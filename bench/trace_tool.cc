// trace_tool: command-line front end of the record/replay subsystem.
//
//   trace_tool record --workload=kmeans --policy=sgxbounds --out=k.sgxtrace
//       execute once, save the event stream, and cross-check that a
//       same-configuration replay reproduces the live counters exactly
//   trace_tool replay k.sgxtrace [--epc_mib=32] [--enclave=0]
//       re-simulate the recorded execution under a (possibly different)
//       machine configuration, without re-executing the workload
//   trace_tool info k.sgxtrace [--events=20]
//       print header/summary and optionally the first decoded events
//   trace_tool diff a.sgxtrace b.sgxtrace
//       event-level comparison; prints the first diverging events

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/trace/record.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_replay.h"

namespace sgxb {
namespace {

void PrintHeader(const TraceHeader& h) {
  std::printf("workload:      %s%s%s\n", h.workload.c_str(), h.note.empty() ? "" : "  # ",
              h.note.c_str());
  std::printf("policy:        %s\n", PolicyName(static_cast<PolicyKind>(h.policy)));
  std::printf("machine:       enclave=%s epc=%" PRIu64 " MiB l1=%" PRIu64 "K/%uw l2=%" PRIu64
              "K/%uw l3=%" PRIu64 "M/%uw\n",
              h.enclave_mode ? "on" : "off", h.epc_bytes / kMiB, h.l1_bytes / kKiB,
              h.l1_ways, h.l2_bytes / kKiB, h.l2_ways, h.l3_bytes / kMiB, h.l3_ways);
  std::printf("run:           threads=%u seed=%" PRIu64 " space=%" PRIu64 " MiB heap=%" PRIu64
              " MiB\n",
              h.threads, h.seed, h.space_bytes / kMiB, h.heap_reserve / kMiB);
  std::printf("cost_table:    %016" PRIx64 " (version %u)\n", h.cost_table_id, h.version);
}

void PrintSummary(const TraceSummary& s, size_t byte_size) {
  std::printf("events:        %" PRIu64 "%s (%zu bytes%s)\n", s.event_count,
              s.truncated ? " [truncated prefix retained]" : "", byte_size,
              s.event_count == 0 ? "" : "");
  std::printf("stream_hash:   %016" PRIx64 "\n", s.stream_hash);
  std::printf("cpus:          %u\n", s.cpu_count);
  std::printf("live_cycles:   %" PRIu64 "\n", s.live_cycles);
  std::printf("peak_vm:       %" PRIu64 " bytes\n", s.peak_vm_bytes);
  if (s.crashed) {
    std::printf("outcome:       crash(%s): %s\n",
                TrapKindName(static_cast<TrapKind>(s.trap_kind)), s.trap_message.c_str());
  } else {
    std::printf("outcome:       completed\n");
  }
}

int Record(FlagParser& parser, int argc, char** argv) {
  std::string workload = "kmeans";
  std::string policy = "sgxbounds";
  std::string size = "M";
  std::string out;
  std::string note;
  std::string faults;
  int64_t threads = 1;
  uint64_t seed = 42;
  uint64_t epc_mib = 94;
  bool enclave = true;
  uint64_t event_limit = 0;
  parser.AddString("workload", &workload, "workload name (see run_workload --list)");
  // Registry ids plus their aliases (e.g. "sgx" for native).
  std::vector<std::string> policy_choices;
  for (const SchemeDescriptor* d : AllSchemes()) {
    policy_choices.push_back(d->id);
    for (const char* alias : d->aliases) {
      policy_choices.push_back(alias);
    }
  }
  parser.AddChoice("policy", &policy, policy_choices, "memory-safety scheme (sgx = native)");
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  parser.AddString("out", &out, "output .sgxtrace path (default <workload>.sgxtrace)");
  parser.AddString("note", &note, "free-form note stored in the trace header");
  parser.AddString("faults", &faults,
                   "deterministic fault plan spec (see src/fault/fault.h), armed on the "
                   "recorded run; the injected accesses land in the trace like any others");
  parser.AddInt("threads", &threads, "simulated worker threads");
  parser.AddUint("seed", &seed, "workload rng seed");
  parser.AddUint("epc_mib", &epc_mib, "usable EPC size in MiB");
  parser.AddBool("enclave", &enclave, "simulate inside the enclave");
  parser.AddUint("event_limit", &event_limit,
                 "retain only the first N events (golden prefix traces); 0 = all");
  parser.Parse(argc, argv);

  const SchemeDescriptor* scheme = FindScheme(policy);
  if (scheme == nullptr) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy.c_str());
    return 1;
  }
  const PolicyKind kind = scheme->kind;
  const WorkloadInfo* info = WorkloadRegistry::Instance().Find(workload);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return 1;
  }
  if (out.empty()) {
    out = workload + ".sgxtrace";
  }

  FaultPlan plan;
  if (!faults.empty()) {
    std::string error;
    if (!FaultPlan::Parse(faults, &plan, &error)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", error.c_str());
      return 1;
    }
  }

  MachineSpec spec;
  spec.enclave_mode = enclave;
  spec.epc_bytes = epc_mib * kMiB;
  spec.seed = seed;
  spec.threads = static_cast<uint32_t>(threads);
  if (!plan.empty()) {
    spec.faults = &plan;
  }
  PrintReproHeader("trace_tool", spec);
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = static_cast<uint32_t>(threads);
  cfg.seed = seed;

  TraceRecorder recorder(info->name + "/" + SizeClassName(cfg.size), note);
  if (event_limit > 0) {
    recorder.set_event_limit(event_limit);
  }
  MachineSpec traced = spec;
  traced.trace = &recorder;
  std::fprintf(stderr, "[record] running %s/%s under %s...\n", workload.c_str(),
               size.c_str(), PolicyName(kind));
  const RunResult live = info->run(kind, traced, PolicyOptions{}, cfg);
  Trace trace = recorder.TakeTrace();

  std::string error;
  if (!SaveTrace(trace, out, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  PrintHeader(trace.header);
  PrintSummary(trace.summary, trace.events.size());
  std::printf("saved:         %s\n", out.c_str());

  if (!trace.summary.truncated) {
    const ReplayResult check = ReplayTrace(trace);
    const bool ok = check.cycles == live.cycles && check.counters.cycles == live.counters.cycles &&
                    check.counters.llc_misses == live.counters.llc_misses &&
                    check.counters.epc_faults == live.counters.epc_faults;
    std::printf("replay check:  %s (replay %" PRIu64 " cycles vs live %" PRIu64 ")\n",
                ok ? "bit-identical" : "MISMATCH", check.cycles, live.cycles);
    return ok ? 0 : 1;
  }
  return 0;
}

int Replay(const std::string& path, FlagParser& parser, int argc, char** argv) {
  uint64_t epc_mib = 0;
  int64_t enclave = -1;
  parser.AddUint("epc_mib", &epc_mib, "override EPC size in MiB (0 = as recorded)");
  parser.AddInt("enclave", &enclave, "override enclave mode 0/1 (-1 = as recorded)");
  parser.Parse(argc, argv);

  Trace trace;
  std::string error;
  if (!LoadTrace(path, &trace, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (trace.summary.truncated) {
    std::fprintf(stderr,
                 "%s is a truncated prefix trace; totals would be meaningless\n",
                 path.c_str());
    return 1;
  }
  SimConfig config = SimConfigFromHeader(trace.header);
  if (epc_mib > 0) {
    config.epc_bytes = epc_mib * kMiB;
  }
  if (enclave >= 0) {
    config.enclave_mode = enclave != 0;
  }
  const ReplayResult r = ReplayTrace(trace, config);
  PrintHeader(trace.header);
  std::printf("replay config: enclave=%s epc=%" PRIu64 " MiB\n",
              config.enclave_mode ? "on" : "off", config.epc_bytes / kMiB);
  std::printf("cycles:        %" PRIu64 " (live run: %" PRIu64 ")\n", r.cycles,
              trace.summary.live_cycles);
  std::printf("llc_misses:    %" PRIu64 "\n", r.counters.llc_misses);
  std::printf("epc_faults:    %" PRIu64 "\n", r.counters.epc_faults);
  std::printf("minor_faults:  %" PRIu64 "\n", r.counters.minor_faults);
  std::printf("events:        %" PRIu64 " replayed over %u cpus\n", r.events_replayed,
              r.cpu_count);
  return 0;
}

const char* EventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAccess:
      return "access";
    case TraceEventKind::kAccessRun:
      return "access_run";
    case TraceEventKind::kCpuDelta:
      return "cpu_delta";
    case TraceEventKind::kCommit:
      return "commit";
    case TraceEventKind::kDecommit:
      return "decommit";
    case TraceEventKind::kParallel:
      return "parallel";
    case TraceEventKind::kMarker:
      return "marker";
    case TraceEventKind::kControl:
      return "control";
  }
  return "?";
}

// Per-kind histogram of the encoded stream: counts, encoded bytes (via
// TraceReader::byte_offset deltas), and how many individual memory accesses
// each kind expands to — the run/loop encodings are where the compression
// comes from, and this table shows exactly how much each buys.
void PrintEventMix(const Trace& trace) {
  constexpr size_t kKinds = 8;
  uint64_t counts[kKinds] = {};
  uint64_t bytes[kKinds] = {};
  uint64_t expanded[kKinds] = {};
  TraceReader reader(trace);
  TraceEvent ev;
  size_t prev = 0;
  while (reader.Next(&ev)) {
    const size_t k = static_cast<size_t>(ev.kind) & (kKinds - 1);
    ++counts[k];
    bytes[k] += reader.byte_offset() - prev;
    prev = reader.byte_offset();
    switch (ev.kind) {
      case TraceEventKind::kAccess:
        expanded[k] += 1;
        break;
      case TraceEventKind::kAccessRun:
        expanded[k] += ev.count;
        break;
      case TraceEventKind::kControl:
        if (static_cast<ControlSub>(ev.sub) == ControlSub::kLoopRun) {
          expanded[k] += ev.count * ev.period;
        }
        break;
      default:
        break;
    }
  }

  std::printf("-- event mix --\n");
  Table mix({"kind", "events", "bytes", "b/event", "accesses"});
  uint64_t total_events = 0, total_bytes = 0, total_accesses = 0;
  for (size_t k = 0; k < kKinds; ++k) {
    if (counts[k] == 0) {
      continue;
    }
    total_events += counts[k];
    total_bytes += bytes[k];
    total_accesses += expanded[k];
    mix.AddRow({EventKindName(static_cast<TraceEventKind>(k)), std::to_string(counts[k]),
                std::to_string(bytes[k]),
                FormatDouble(static_cast<double>(bytes[k]) / counts[k], 1),
                std::to_string(expanded[k])});
  }
  mix.AddSeparator();
  mix.AddRow({"total", std::to_string(total_events), std::to_string(total_bytes),
              total_events == 0
                  ? "-"
                  : FormatDouble(static_cast<double>(total_bytes) / total_events, 1),
              std::to_string(total_accesses)});
  mix.Print();
  if (total_accesses > 0 && total_bytes > 0) {
    // Baseline for the ratio: the most compact conceivable per-access
    // encoding (one minimal 2-byte kAccess event per access, no runs).
    std::printf("compression:   %" PRIu64 " accesses in %" PRIu64
                " encoded bytes — %sx vs one 2-byte event per access\n",
                total_accesses, total_bytes,
                FormatDouble(static_cast<double>(total_accesses) * 2 /
                                 static_cast<double>(total_bytes),
                             1)
                    .c_str());
  }
}

int Info(const std::string& path, FlagParser& parser, int argc, char** argv) {
  uint64_t events = 0;
  parser.AddUint("events", &events, "also print the first N decoded events");
  parser.Parse(argc, argv);

  Trace trace;
  std::string error;
  if (!LoadTrace(path, &trace, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("file:          %s\n", path.c_str());
  PrintHeader(trace.header);
  PrintSummary(trace.summary, trace.events.size());
  PrintEventMix(trace);
  if (events > 0) {
    TraceReader reader(trace);
    TraceEvent ev;
    while (reader.position() < events && reader.Next(&ev)) {
      std::printf("  %6" PRIu64 "  %s\n", reader.position() - 1,
                  FormatTraceEvent(ev).c_str());
    }
  }
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b, FlagParser& parser, int argc,
         char** argv) {
  uint64_t limit = 10;
  parser.AddUint("limit", &limit, "max diverging events to print");
  parser.Parse(argc, argv);

  Trace a, b;
  std::string error;
  if (!LoadTrace(path_a, &a, &error) || !LoadTrace(path_b, &b, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  if (a.summary.stream_hash == b.summary.stream_hash &&
      a.summary.event_count == b.summary.event_count) {
    std::printf("identical: %" PRIu64 " events, stream_hash %016" PRIx64 "\n",
                a.summary.event_count, a.summary.stream_hash);
    return 0;
  }

  TraceReader ra(a), rb(b);
  TraceEvent ea, eb;
  uint64_t shown = 0;
  while (shown < limit) {
    const bool ha = ra.Next(&ea);
    const bool hb = rb.Next(&eb);
    if (!ha && !hb) {
      break;
    }
    if (!ha || !hb) {
      std::printf("#%" PRIu64 ": %s ends, %s continues with: %s\n",
                  (ha ? rb.position() : ra.position()) - 1, ha ? path_b.c_str() : path_a.c_str(),
                  ha ? path_a.c_str() : path_b.c_str(),
                  FormatTraceEvent(ha ? ea : eb).c_str());
      ++shown;
      if (!ha && !hb) {
        break;
      }
      continue;
    }
    if (!(ea == eb)) {
      std::printf("#%" PRIu64 ":\n  a: %s\n  b: %s\n", ra.position() - 1,
                  FormatTraceEvent(ea).c_str(), FormatTraceEvent(eb).c_str());
      ++shown;
    }
  }
  std::printf("traces differ (a: %" PRIu64 " events hash %016" PRIx64 ", b: %" PRIu64
              " events hash %016" PRIx64 ")\n",
              a.summary.event_count, a.summary.stream_hash, b.summary.event_count,
              b.summary.stream_hash);
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_tool <record|replay|info|diff> [args] [--help]\n"
                 "  record --workload=W --policy=P [--size --threads --seed --epc_mib "
                 "--enclave --event_limit --note] --out=T.sgxtrace\n"
                 "  replay T.sgxtrace [--epc_mib=N] [--enclave=0|1]\n"
                 "  info   T.sgxtrace [--events=N]\n"
                 "  diff   A.sgxtrace B.sgxtrace [--limit=N]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  // Re-point the parser past the subcommand.
  argv[1] = argv[0];
  FlagParser parser;
  if (cmd == "record") {
    return Record(parser, argc - 1, argv + 1);
  }
  if (cmd == "replay" || cmd == "info") {
    // The path is the first positional; pre-scan so flags can follow it.
    std::string path;
    for (int i = 2; i < argc; ++i) {
      if (argv[i][0] != '-') {
        path = argv[i];
        // Swallow the positional by shifting the tail left.
        for (int j = i; j + 1 < argc; ++j) {
          argv[j] = argv[j + 1];
        }
        --argc;
        break;
      }
    }
    if (path.empty()) {
      std::fprintf(stderr, "%s: missing .sgxtrace path\n", cmd.c_str());
      return 1;
    }
    return cmd == "replay" ? Replay(path, parser, argc - 1, argv + 1)
                           : Info(path, parser, argc - 1, argv + 1);
  }
  if (cmd == "diff") {
    std::vector<std::string> paths;
    for (int i = 2; i < argc && paths.size() < 2;) {
      if (argv[i][0] != '-') {
        paths.push_back(argv[i]);
        for (int j = i; j + 1 < argc; ++j) {
          argv[j] = argv[j + 1];
        }
        --argc;
      } else {
        ++i;
      }
    }
    if (paths.size() != 2) {
      std::fprintf(stderr, "diff: need exactly two .sgxtrace paths\n");
      return 1;
    }
    return Diff(paths[0], paths[1], parser, argc - 1, argv + 1);
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  return 1;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) { return sgxb::Main(argc, argv); }
