// IR engine comparison: runs every "ir" suite workload under all four
// policies with BOTH execution engines (reference switch interpreter vs
// pre-decoded direct-threaded), verifies the simulated results are
// bit-identical, and reports the host-side speedup.
//
// Simulated output (stdout) depends only on the simulation, never on the
// engine: the table prints cycles/memory from runs that were cross-checked
// between engines and aborts on any divergence. Host wall-clock lives on
// stderr (--selftime) and in BENCH_ir_engine.json (--json) - that file is
// the committed evidence for the threaded engine's speedup.

#include "bench/bench_util.h"

namespace sgxb {
namespace {

// Host milliseconds for `label` from the recorded rows (-1 if absent).
double HostMsFor(const std::string& label) {
  BenchJsonState& s = JsonState();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const BenchJsonRow& row : s.rows) {
    if (row.label == label) {
      return row.host_ms;
    }
  }
  return -1.0;
}

bool SameSimulation(const RunResult& a, const RunResult& b) {
  return a.cycles == b.cycles && a.peak_vm_bytes == b.peak_vm_bytes &&
         a.crashed == b.crashed && a.trap_message == b.trap_message &&
         a.mpx_bt_count == b.mpx_bt_count && a.counters == b.counters;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string size = "M";
  int64_t repeats = 1;
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  parser.AddInt("repeats", &repeats, "timed repetitions per (workload, policy, engine)");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  MachineSpec spec;
  PrintReproHeader("ir_engine", spec);
  std::printf("IR execution engines: reference (switch) vs threaded (pre-decoded)\n");
  std::printf("simulated results are checked bit-identical between engines\n\n");

  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = 1;

  const std::vector<const WorkloadInfo*> workloads =
      WorkloadRegistry::Instance().BySuite("ir");
  const IrEngine engines[] = {IrEngine::kReference, IrEngine::kThreaded};

  // One job per (workload, policy, engine, repeat); repeats > 1 sharpen the
  // host-time measurement without touching simulated results.
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : policies) {
      for (const IrEngine engine : engines) {
        for (int64_t rep = 0; rep < repeats; ++rep) {
          PolicyOptions options;
          options.ir_engine = engine;
          std::string label = w->name + "/" + PolicyName(kind) + "/" + IrEngineName(engine);
          if (repeats > 1) {
            label += "#" + std::to_string(rep);
          }
          jobs.push_back(
              {std::move(label), [w, kind, spec, options, cfg] {
                 return w->run(kind, spec, options, cfg);
               }});
        }
      }
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "ir_engine");

  // Cross-check engines and print the simulated table.
  Table table({"workload", "policy", "cycles", "vs native", "peak vm", "engines agree"});
  bool all_match = true;
  size_t j = 0;
  const size_t per_engine = static_cast<size_t>(repeats);
  for (const WorkloadInfo* w : workloads) {
    uint64_t native_cycles = 0;
    for (PolicyKind kind : policies) {
      const RunResult& ref = results[j];
      const RunResult& thr = results[j + per_engine];
      bool match = true;
      for (size_t rep = 0; rep < 2 * per_engine; ++rep) {
        match = match && SameSimulation(ref, results[j + rep]);
      }
      all_match = all_match && match;
      if (kind == PolicyKind::kNative) {
        native_cycles = thr.cycles;
      }
      table.AddRow({w->name, PolicyName(kind), std::to_string(thr.cycles),
                    FormatRatio(native_cycles == 0
                                    ? 0.0
                                    : static_cast<double>(thr.cycles) / native_cycles),
                    FormatBytes(thr.peak_vm_bytes), match ? "yes" : "NO"});
      j += 2 * per_engine;
    }
  }
  table.Print();

  if (!all_match) {
    std::printf("\nENGINE MISMATCH: simulated results differ between engines\n");
    return 1;
  }
  std::printf("\nall %zu (workload, policy) pairs bit-identical across engines\n",
              workloads.size() * policies.size());

  // Host-side speedup, from the same timed rows --json writes. Stderr only:
  // stdout must not depend on host speed.
  double ref_total = 0;
  double thr_total = 0;
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : policies) {
      for (int64_t rep = 0; rep < repeats; ++rep) {
        const std::string suffix = repeats > 1 ? "#" + std::to_string(rep) : "";
        const std::string base = w->name + "/" + std::string(PolicyName(kind)) + "/";
        const double r = HostMsFor(base + "reference" + suffix);
        const double t = HostMsFor(base + "threaded" + suffix);
        if (r >= 0 && t >= 0) {
          ref_total += r;
          thr_total += t;
        }
      }
    }
  }
  if (thr_total > 0) {
    std::fprintf(stderr,
                 "[ir_engine] host time: reference %.1f ms, threaded %.1f ms, "
                 "speedup %.2fx\n",
                 ref_total, thr_total, ref_total / thr_total);
  }
  return 0;
}
