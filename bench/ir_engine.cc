// IR engine comparison: runs every "ir" suite workload under all policies
// with the THREE execution engines (reference switch interpreter, pre-decoded
// direct-threaded, template JIT), verifies the simulated results are
// bit-identical, and reports the host-side speedups.
//
// Simulated output (stdout) depends only on the simulation, never on the
// engine: the table prints cycles/memory from runs that were cross-checked
// between engines and aborts on any divergence. Host wall-clock lives on
// stderr (--selftime) and in BENCH_ir_engine.json (--json) - that file is
// the committed evidence for the engines' speedups, including a "summary"
// block with per-(workload, policy) speedup_vs_reference and geomeans.

#include <cmath>

#include "bench/bench_util.h"

namespace sgxb {
namespace {

// Host milliseconds for `label` from the recorded rows (-1 if absent).
double HostMsFor(const std::string& label) {
  BenchJsonState& s = JsonState();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const BenchJsonRow& row : s.rows) {
    if (row.label == label) {
      return row.host_ms;
    }
  }
  return -1.0;
}

bool SameSimulation(const RunResult& a, const RunResult& b) {
  return a.cycles == b.cycles && a.peak_vm_bytes == b.peak_vm_bytes &&
         a.crashed == b.crashed && a.trap_message == b.trap_message &&
         a.mpx_bt_count == b.mpx_bt_count && a.counters == b.counters;
}

// Geomean of strictly-positive ratios (0 if none).
double Geomean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : xs) {
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string size = "M";
  int64_t repeats = 1;
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  parser.AddInt("repeats", &repeats, "timed repetitions per (workload, policy, engine)");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  MachineSpec spec;
  PrintReproHeader("ir_engine", spec);
  std::printf("IR execution engines: reference (switch) vs threaded (pre-decoded) vs jit (native)\n");
  std::printf("simulated results are checked bit-identical between engines\n\n");

  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = 1;

  const std::vector<const WorkloadInfo*> workloads =
      WorkloadRegistry::Instance().BySuite("ir");
  const IrEngine engines[] = {IrEngine::kReference, IrEngine::kThreaded,
                              IrEngine::kJit};
  constexpr size_t kNumEngines = 3;

  // One job per (workload, policy, engine, repeat); repeats > 1 sharpen the
  // host-time measurement without touching simulated results.
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : policies) {
      for (const IrEngine engine : engines) {
        for (int64_t rep = 0; rep < repeats; ++rep) {
          PolicyOptions options;
          options.ir_engine = engine;
          std::string label = w->name + "/" + PolicyName(kind) + "/" + IrEngineName(engine);
          if (repeats > 1) {
            label += "#" + std::to_string(rep);
          }
          jobs.push_back(
              {std::move(label), [w, kind, spec, options, cfg] {
                 return w->run(kind, spec, options, cfg);
               }});
        }
      }
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "ir_engine");

  // Cross-check engines and print the simulated table.
  Table table({"workload", "policy", "cycles", "vs native", "peak vm", "engines agree"});
  bool all_match = true;
  size_t j = 0;
  const size_t per_engine = static_cast<size_t>(repeats);
  for (const WorkloadInfo* w : workloads) {
    uint64_t native_cycles = 0;
    for (PolicyKind kind : policies) {
      const RunResult& ref = results[j];
      const RunResult& thr = results[j + per_engine];
      bool match = true;
      for (size_t rep = 0; rep < kNumEngines * per_engine; ++rep) {
        match = match && SameSimulation(ref, results[j + rep]);
      }
      all_match = all_match && match;
      if (kind == PolicyKind::kNative) {
        native_cycles = thr.cycles;
      }
      table.AddRow({w->name, PolicyName(kind), std::to_string(thr.cycles),
                    FormatRatio(native_cycles == 0
                                    ? 0.0
                                    : static_cast<double>(thr.cycles) / native_cycles),
                    FormatBytes(thr.peak_vm_bytes), match ? "yes" : "NO"});
      j += kNumEngines * per_engine;
    }
  }
  table.Print();

  if (!all_match) {
    std::printf("\nENGINE MISMATCH: simulated results differ between engines\n");
    return 1;
  }
  std::printf("\nall %zu (workload, policy) pairs bit-identical across all three engines\n",
              workloads.size() * policies.size());

  // Host-side speedups, from the same timed rows --json writes. Stderr only:
  // stdout must not depend on host speed. For each (workload, policy, engine)
  // the best (minimum) repeat is the measurement - least scheduler noise.
  struct PairTiming {
    std::string workload;
    std::string policy;
    double ms[kNumEngines] = {-1, -1, -1};
  };
  std::vector<PairTiming> pairs;
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : policies) {
      PairTiming pt;
      pt.workload = w->name;
      pt.policy = PolicyName(kind);
      for (size_t e = 0; e < kNumEngines; ++e) {
        const std::string base = w->name + "/" + std::string(PolicyName(kind)) +
                                 "/" + IrEngineName(engines[e]);
        double best = -1;
        for (int64_t rep = 0; rep < repeats; ++rep) {
          const std::string suffix = repeats > 1 ? "#" + std::to_string(rep) : "";
          const double ms = HostMsFor(base + suffix);
          if (ms >= 0 && (best < 0 || ms < best)) {
            best = ms;
          }
        }
        pt.ms[e] = best;
      }
      pairs.push_back(std::move(pt));
    }
  }

  // Summary block: per-pair host times + speedups, per-workload geomeans,
  // and the overall geomeans - the committed evidence for the JIT tier.
  std::vector<double> thr_speedups;  // reference / threaded
  std::vector<double> jit_speedups;  // reference / jit
  std::vector<double> jit_vs_thr;    // threaded / jit
  std::string json = "{\n    \"engines\": [\"reference\", \"threaded\", \"jit\"],\n    \"pairs\": [";
  bool first = true;
  for (const PairTiming& pt : pairs) {
    const double r = pt.ms[0];
    const double t = pt.ms[1];
    const double z = pt.ms[2];
    if (r <= 0 || t <= 0 || z <= 0) {
      continue;
    }
    thr_speedups.push_back(r / t);
    jit_speedups.push_back(r / z);
    jit_vs_thr.push_back(t / z);
    json += first ? "\n" : ",\n";
    first = false;
    json += "      {\"workload\": \"" + JsonEscape(pt.workload) +
            "\", \"policy\": \"" + JsonEscape(pt.policy) +
            "\", \"host_ms\": {\"reference\": " + FormatDouble(r) +
            ", \"threaded\": " + FormatDouble(t) +
            ", \"jit\": " + FormatDouble(z) +
            "}, \"speedup_vs_reference\": {\"threaded\": " + FormatDouble(r / t) +
            ", \"jit\": " + FormatDouble(r / z) +
            "}, \"jit_vs_threaded\": " + FormatDouble(t / z) + "}";
  }
  json += "\n    ],\n    \"per_workload_geomean\": [";
  first = true;
  for (const WorkloadInfo* w : workloads) {
    std::vector<double> wt, wz, wzt;
    for (const PairTiming& pt : pairs) {
      if (pt.workload != w->name || pt.ms[0] <= 0 || pt.ms[1] <= 0 || pt.ms[2] <= 0) {
        continue;
      }
      wt.push_back(pt.ms[0] / pt.ms[1]);
      wz.push_back(pt.ms[0] / pt.ms[2]);
      wzt.push_back(pt.ms[1] / pt.ms[2]);
    }
    if (wt.empty()) {
      continue;
    }
    json += first ? "\n" : ",\n";
    first = false;
    json += "      {\"workload\": \"" + JsonEscape(w->name) +
            "\", \"speedup_vs_reference\": {\"threaded\": " + FormatDouble(Geomean(wt)) +
            ", \"jit\": " + FormatDouble(Geomean(wz)) +
            "}, \"jit_vs_threaded\": " + FormatDouble(Geomean(wzt)) + "}";
  }
  json += "\n    ],\n    \"geomean\": {\"speedup_vs_reference\": {\"threaded\": " +
          FormatDouble(Geomean(thr_speedups)) +
          ", \"jit\": " + FormatDouble(Geomean(jit_speedups)) +
          "}, \"jit_vs_threaded\": " + FormatDouble(Geomean(jit_vs_thr)) + "}\n  }";
  SetBenchJsonSummary(json);

  if (!thr_speedups.empty()) {
    std::fprintf(stderr,
                 "[ir_engine] geomean speedup vs reference: threaded %.2fx, "
                 "jit %.2fx; jit vs threaded %.2fx\n",
                 Geomean(thr_speedups), Geomean(jit_speedups),
                 Geomean(jit_vs_thr));
    for (const WorkloadInfo* w : workloads) {
      std::vector<double> wzt;
      for (const PairTiming& pt : pairs) {
        if (pt.workload == w->name && pt.ms[1] > 0 && pt.ms[2] > 0) {
          wzt.push_back(pt.ms[1] / pt.ms[2]);
        }
      }
      if (!wzt.empty()) {
        std::fprintf(stderr, "[ir_engine]   %s: jit vs threaded %.2fx\n",
                     w->name.c_str(), Geomean(wzt));
      }
    }
  }
  return 0;
}
