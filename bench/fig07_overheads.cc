// Figure 7 reproduction: performance (top) and memory (bottom) overheads of
// Intel MPX, AddressSanitizer and SGXBounds over native SGX execution for
// the Phoenix and PARSEC suites, 8 threads.
//
// Paper's headline numbers (SS6.2):
//   performance gmean:  MPX ~1.75x,  ASan ~1.51x,  SGXBounds ~1.17x
//   memory gmean:       MPX ~1.95x,  ASan ~8.1x,   SGXBounds ~1.001x
//   MPX crashes on dedup (bounds tables exhaust enclave memory).

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  int64_t threads = 8;
  std::string size = "L";
  parser.AddInt("threads", &threads, "worker threads (paper: 8)");
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  PrintReproHeader("fig07_overheads", MachineSpec{});
  std::printf("Figure 7: Phoenix + PARSEC overheads over native SGX (%lld threads)\n",
              static_cast<long long>(threads));
  std::printf("paper expectation: perf gmean MPX~1.75x ASan~1.51x SGXBounds~1.17x; "
              "mem gmean MPX~1.95x ASan~8.1x SGXBounds~1.00x; MPX crashes on dedup\n");

  MachineSpec spec;
  WorkloadConfig cfg;
  cfg.threads = static_cast<uint32_t>(threads);
  cfg.size = ParseSizeClass(size);

  std::vector<const WorkloadInfo*> workloads;
  for (const std::string suite : {"phoenix", "parsec"}) {
    for (const WorkloadInfo* w : WorkloadRegistry::Instance().BySuite(suite)) {
      workloads.push_back(w);
    }
  }
  const std::vector<SuiteRow> rows = RunSuiteRows(workloads, spec, cfg, "fig07", policies);
  PrintOverheadTables("Fig.7 Phoenix+PARSEC (" + size + ", " + std::to_string(threads) +
                          " threads)",
                      rows);
  return 0;
}
