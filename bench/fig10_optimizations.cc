// Figure 10 reproduction: effect of the SS4.4 optimizations on SGXBounds,
// at two levels:
//
//  (a) policy level - the whole Phoenix/PARSEC suite with safe-access
//      elision and loop hoisting toggled (the paper's Fig. 10 axes);
//  (b) compiler level - IR kernels instrumented by the actual SGXBounds
//      pass with the optimizations toggled, showing the pass-level
//      mechanics (checks inserted / elided / hoisted).
//
// Paper expectation: ~2% average improvement, but up to ~20% on loop-dense
// kernels (kmeans, matrixmul) and with safe-access elision on x264.
//
// --ablation extends (b) into a per-pass ablation across every registered
// scheme: four IR kernels, each built to trip exactly one pipeline pass,
// run under every optimization configuration (src/ir/opt). Rows land in
// --json with the per-pass counters (checks_inserted/elided_*/hoisted/
// pattern_hoisted). Default stdout is unchanged: the ablation only prints
// when requested.

#include "bench/bench_util.h"
#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/passes.h"
#include "src/policy/run.h"
#include "src/policy/scheme_ir.h"

namespace sgxb {
namespace {

// Explicit per-flag construction: every pipeline pass is named here, so a
// new pass can't silently ride in (or fall out of) the "all" configuration
// through PolicyOptions defaults.
PolicyOptions OptWith(bool safe, bool hoist, bool redundant, bool pattern, bool infield) {
  PolicyOptions o;
  o.opt_safe_elision = safe;
  o.opt_hoist_checks = hoist;
  o.opt_redundant_elision = redundant;
  o.opt_pattern_loops = pattern;
  o.opt_infield_elision = infield;
  return o;
}
PolicyOptions OptNone() { return OptWith(false, false, false, false, false); }
PolicyOptions OptSafe() { return OptWith(true, false, false, false, false); }
PolicyOptions OptHoist() { return OptWith(false, true, false, false, false); }
// "all" means every pipeline pass. The three ShadowBound-style flags are
// inert for the policy-templated suite below (only IR lowerings read them),
// so the Fig. 10 table is unchanged by their presence here.
PolicyOptions OptAll() { return OptWith(true, true, true, true, true); }

// IR kernel for the pass-level ablation: the Fig. 4 array copy at scale.
IrFunction BuildCopyKernel(uint32_t n) {
  IrBuilder b("copy");
  const ValueId size = b.Const(n * 8);
  const ValueId src = b.Malloc(size);
  const ValueId dst = b.Malloc(size);
  auto init = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, init.iv, b.Gep(src, init.iv, 8));
  b.EndLoop(init);
  auto copy = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId v = b.Load(IrType::kI64, b.Gep(src, copy.iv, 8));
  b.Store(IrType::kI64, v, b.Gep(dst, copy.iv, 8));
  b.EndLoop(copy);
  b.Ret();
  return b.Finish();
}

void RunIrAblation() {
  std::printf("\n== pass-level ablation (IR array-copy kernel, n=65536) ==\n");
  Table table({"config", "checks", "elided", "hoisted", "cycles", "vs none"});
  struct Config {
    const char* name;
    bool elide;
    bool hoist;
  };
  const Config configs[] = {{"none", false, false},
                            {"safe-elision", true, false},
                            {"hoisting", false, true},
                            {"all", true, true}};
  uint64_t baseline = 0;
  for (const Config& config : configs) {
    EnclaveConfig ecfg;
    ecfg.space_bytes = 256 * kMiB;
    Enclave enclave(ecfg);
    Heap heap(&enclave, 64 * kMiB);
    StackAllocator stack(&enclave, 1 * kMiB);
    SgxBoundsRuntime rt(&enclave, &heap);
    Interpreter interp(&enclave, &heap, &stack);
    interp.AttachSgx(&rt);

    IrFunction fn = BuildCopyKernel(65536);
    SgxPassOptions options;
    options.elide_safe = config.elide;
    options.hoist_loops = config.hoist;
    const SgxPassStats stats = RunSgxBoundsPass(fn, options);
    Cpu& cpu = enclave.main_cpu();
    interp.Run(fn, cpu);
    if (baseline == 0) {
      baseline = cpu.cycles();
    }
    table.AddRow({config.name, std::to_string(stats.checks_inserted),
                  std::to_string(stats.checks_elided_safe),
                  std::to_string(stats.checks_hoisted), std::to_string(cpu.cycles()),
                  FormatDouble(static_cast<double>(cpu.cycles()) /
                                   static_cast<double>(baseline) * 100.0,
                               1) +
                      "%"});
  }
  table.Print();
}

// --- the extended per-pass ablation (--ablation) -----------------------------------

// Rewrites the latest counted-loop exit compare from i < n to i != n. The
// trip count is unchanged (monotonic induction from a counted-loop shape),
// but the bound is no longer affine-closed for SCEV hoisting - exactly the
// shape the pattern-based loop pass exists for.
void FlipLastCmpToNe(IrFunction& fn) {
  IrInstr* last = nullptr;
  for (IrBlock& block : fn.blocks) {
    for (IrInstr& instr : block.instrs) {
      if (instr.op == IrOp::kICmp && instr.imm == static_cast<int64_t>(IrCmp::kSLt)) {
        last = &instr;
      }
    }
  }
  if (last != nullptr) {
    last->imm = static_cast<int64_t>(IrCmp::kNe);
  }
}

// Load+increment+store through the same pointer: the second check of every
// pair is dominated by an equal-width check on the same SSA pointer, the
// redundant-check eliminator's bread and butter.
IrFunction BuildRmwKernel(uint32_t n) {
  IrBuilder b("rmw");
  const ValueId t = b.Malloc(b.Const(n * 8));
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId slot = b.Gep(t, loop.iv, 8);
  const ValueId x = b.Load(IrType::kI64, slot);
  b.Store(IrType::kI64, b.Add(x, b.Const(1)), slot);
  b.EndLoop(loop);
  b.Ret();
  return b.Finish();
}

// Two loops SCEV hoisting must refuse: a strided sweep whose byte stride
// exceeds max_hoist_stride, and an i != n loop (no affine-closed bound).
// Both are monotonic with constant bounds, so the pattern pass proves the
// exact extent and hoists one range check each.
IrFunction BuildStridedKernel(uint32_t n, uint32_t stride) {
  IrBuilder b("strided");
  const ValueId a = b.Malloc(b.Const(n * 8));
  auto sweep = b.BeginCountedLoop(b.Const(0), b.Const(n), stride);
  b.Store(IrType::kI64, sweep.iv, b.Gep(a, sweep.iv, 8));
  b.EndLoop(sweep);
  auto scan = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Load(IrType::kI64, b.Gep(a, scan.iv, 8));
  b.EndLoop(scan);
  b.Ret();
  IrFunction fn = b.Finish();
  FlipLastCmpToNe(fn);
  return fn;
}

// Constant-offset field accesses on a RUNTIME-sized record (the size is
// loaded from memory, so static object-size analysis cannot prove safety):
// the two sub-granule fields are provably inside any live object's rounded
// footprint, so in-field elision drops their checks where the scheme's
// granule floor allows; the 8-byte field past the granule stays checked.
IrFunction BuildFieldsKernel(uint32_t n) {
  IrBuilder b("fields");
  const ValueId cell = b.Malloc(b.Const(8));
  b.Store(IrType::kI64, b.Const(24), cell);
  const ValueId sz = b.Load(IrType::kI64, cell);
  const ValueId rec = b.Malloc(sz);
  auto loop = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId lo = b.Load(IrType::kI32, b.Gep(rec, b.Const(0), 1, /*offset=*/0));
  const ValueId hi = b.Load(IrType::kI32, b.Gep(rec, b.Const(0), 1, /*offset=*/4));
  b.Store(IrType::kI64, b.Add(lo, hi), b.Gep(rec, b.Const(0), 1, /*offset=*/8));
  b.EndLoop(loop);
  b.Ret();
  return b.Finish();
}

// Instruments a copy of `proto` for the scheme and runs it; pass counters
// land in RunResult.pass_stats (and the --json rows).
RunResult RunKernelUnder(PolicyKind kind, const IrFunction& proto,
                         const PolicyOptions& options) {
  MachineSpec spec;
  return RunPolicyKind(kind, spec, options, [&proto](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    IrFunction fn = proto;
    StackAllocator stack(&env.enclave, 1 * kMiB, "ir-stack");
    Interpreter interp(&env.enclave, &env.heap, &stack);
    interp.set_engine(env.options.ir_engine);
    env.pass_stats.Accumulate(SchemeIrLowering<P>::Apply(env.policy, interp, fn, env.options));
    interp.Run(fn, env.cpu, {}, /*max_steps=*/UINT64_MAX);
  });
}

void RunPassAblation() {
  struct Kernel {
    const char* name;
    IrFunction fn;
  };
  const Kernel kernels[] = {{"copy", BuildCopyKernel(16384)},
                            {"rmw", BuildRmwKernel(16384)},
                            {"strided", BuildStridedKernel(65536, 256)},
                            {"fields", BuildFieldsKernel(16384)}};
  struct Config {
    std::string name;
    PolicyOptions options;
  };
  std::vector<Config> configs;
  if (OptsFlag() == "default") {
    configs = {{"none", OptNone()},
               {"safe", OptSafe()},
               {"hoist", OptHoist()},
               {"redundant", OptWith(false, false, true, false, false)},
               {"pattern", OptWith(false, false, false, true, false)},
               {"infield", OptWith(false, false, false, false, true)},
               {"paper", OptWith(true, true, false, false, false)},
               {"all", OptAll()}};
  } else {
    // --opts narrows the ablation to "none" vs. the requested set
    // (spelling-checked by ResolveOptions; exits(2) on an unknown pass).
    configs = {{"none", OptNone()}, {OptsFlag(), ResolveOptions(OptNone())}};
  }

  // Every registered non-baseline scheme; native has no checks to ablate.
  std::vector<PolicyKind> kinds;
  for (PolicyKind kind : ResolvePolicies()) {
    if (!SchemeOf(kind).baseline) {
      kinds.push_back(kind);
    }
  }

  std::vector<BenchJob> jobs;
  for (const Kernel& kernel : kernels) {
    for (const PolicyKind kind : kinds) {
      for (const Config& config : configs) {
        jobs.push_back({std::string(kernel.name) + "/" + SchemeOf(kind).id + "/" +
                            config.name,
                        [&kernel, kind, &config] {
                          return RunKernelUnder(kind, kernel.fn, config.options);
                        }});
      }
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig10-ablation");

  std::printf("\n== per-pass ablation (IR kernels x schemes, src/ir/opt pipeline) ==\n");
  Table table({"kernel", "policy", "config", "checks", "safe", "redun", "infield",
               "hoist", "pattern", "cycles", "vs none"});
  size_t i = 0;
  for (const Kernel& kernel : kernels) {
    for (const PolicyKind kind : kinds) {
      uint64_t none_cycles = 0;
      for (const Config& config : configs) {
        const RunResult& r = results[i++];
        const CheckPassStats& p = r.pass_stats;
        if (config.name == "none") {
          none_cycles = r.cycles;
        }
        table.AddRow({kernel.name, SchemeOf(kind).id, config.name,
                      std::to_string(p.checks_inserted),
                      std::to_string(p.checks_elided_safe),
                      std::to_string(p.checks_elided_redundant),
                      std::to_string(p.checks_elided_infield),
                      std::to_string(p.checks_hoisted),
                      std::to_string(p.checks_pattern_hoisted), std::to_string(r.cycles),
                      none_cycles == 0
                          ? "-"
                          : FormatDouble(static_cast<double>(r.cycles) /
                                             static_cast<double>(none_cycles) * 100.0,
                                         1) +
                                "%"});
      }
    }
    table.AddSeparator();
  }
  table.Print();
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  int64_t threads = 8;
  std::string size = "S";
  bool ablation = false;
  parser.AddInt("threads", &threads, "worker threads");
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  parser.AddBool("ablation", &ablation,
                 "also run the per-pass ablation (IR kernels x all registered "
                 "schemes x optimization configs)");
  PoliciesFlag() = "all";  // ablation default: every registered scheme
  AddPoliciesFlag(parser);
  AddOptsFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  PrintReproHeader("fig10_optimizations", MachineSpec{});
  std::printf("Figure 10: SGXBounds optimization ablation\n");
  std::printf("paper expectation: ~2%% average gain; up to ~20-22%% on kmeans/matrixmul "
              "(hoisting) and x264 (safe elision)\n\n");

  Table table({"benchmark", "none", "safe-elision", "hoisting", "all"});
  std::vector<double> g_none;
  std::vector<double> g_safe;
  std::vector<double> g_hoist;
  std::vector<double> g_all;
  std::vector<const WorkloadInfo*> workloads;
  for (const std::string suite : {"phoenix", "parsec"}) {
    for (const WorkloadInfo* w : WorkloadRegistry::Instance().BySuite(suite)) {
      workloads.push_back(w);
    }
  }

  // Five independent runs per workload (native + 4 optimization configs),
  // dispatched across host threads.
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = static_cast<uint32_t>(threads);
  struct Variant {
    const char* name;
    PolicyKind kind;
    PolicyOptions options;
  };
  const Variant variants[] = {{"native", PolicyKind::kNative, PolicyOptions{}},
                              {"none", PolicyKind::kSgxBounds, OptNone()},
                              {"safe", PolicyKind::kSgxBounds, OptSafe()},
                              {"hoist", PolicyKind::kSgxBounds, OptHoist()},
                              {"all", PolicyKind::kSgxBounds, OptAll()}};
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (const Variant& v : variants) {
      jobs.push_back({w->name + "/" + v.name, [w, &v, cfg] {
                        return w->run(v.kind, MachineSpec{}, v.options, cfg);
                      }});
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig10");

  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const RunResult* r = &results[wi * 5];
    const RunResult &native = r[0], &none = r[1], &safe = r[2], &hoist = r[3], &all = r[4];
    table.AddRow({workloads[wi]->name, PerfCell(none, native), PerfCell(safe, native),
                  PerfCell(hoist, native), PerfCell(all, native)});
    g_none.push_back(none.CyclesRatioOver(native));
    g_safe.push_back(safe.CyclesRatioOver(native));
    g_hoist.push_back(hoist.CyclesRatioOver(native));
    g_all.push_back(all.CyclesRatioOver(native));
  }
  table.AddSeparator();
  table.AddRow({"gmean", FormatRatio(GeoMean(g_none)), FormatRatio(GeoMean(g_safe)),
                FormatRatio(GeoMean(g_hoist)), FormatRatio(GeoMean(g_all))});
  table.Print();

  RunIrAblation();
  if (ablation) {
    RunPassAblation();
  }
  return 0;
}
