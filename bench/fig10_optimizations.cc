// Figure 10 reproduction: effect of the SS4.4 optimizations on SGXBounds,
// at two levels:
//
//  (a) policy level - the whole Phoenix/PARSEC suite with safe-access
//      elision and loop hoisting toggled (the paper's Fig. 10 axes);
//  (b) compiler level - IR kernels instrumented by the actual SGXBounds
//      pass with the optimizations toggled, showing the pass-level
//      mechanics (checks inserted / elided / hoisted).
//
// Paper expectation: ~2% average improvement, but up to ~20% on loop-dense
// kernels (kmeans, matrixmul) and with safe-access elision on x264.

#include "bench/bench_util.h"
#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/passes.h"

namespace sgxb {
namespace {

PolicyOptions OptNone() {
  PolicyOptions o;
  o.opt_safe_elision = false;
  o.opt_hoist_checks = false;
  return o;
}
PolicyOptions OptSafe() {
  PolicyOptions o = OptNone();
  o.opt_safe_elision = true;
  return o;
}
PolicyOptions OptHoist() {
  PolicyOptions o = OptNone();
  o.opt_hoist_checks = true;
  return o;
}
PolicyOptions OptAll() {
  PolicyOptions o;
  return o;
}

// IR kernel for the pass-level ablation: the Fig. 4 array copy at scale.
IrFunction BuildCopyKernel(uint32_t n) {
  IrBuilder b("copy");
  const ValueId size = b.Const(n * 8);
  const ValueId src = b.Malloc(size);
  const ValueId dst = b.Malloc(size);
  auto init = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  b.Store(IrType::kI64, init.iv, b.Gep(src, init.iv, 8));
  b.EndLoop(init);
  auto copy = b.BeginCountedLoop(b.Const(0), b.Const(n), 1);
  const ValueId v = b.Load(IrType::kI64, b.Gep(src, copy.iv, 8));
  b.Store(IrType::kI64, v, b.Gep(dst, copy.iv, 8));
  b.EndLoop(copy);
  b.Ret();
  return b.Finish();
}

void RunIrAblation() {
  std::printf("\n== pass-level ablation (IR array-copy kernel, n=65536) ==\n");
  Table table({"config", "checks", "elided", "hoisted", "cycles", "vs none"});
  struct Config {
    const char* name;
    bool elide;
    bool hoist;
  };
  const Config configs[] = {{"none", false, false},
                            {"safe-elision", true, false},
                            {"hoisting", false, true},
                            {"all", true, true}};
  uint64_t baseline = 0;
  for (const Config& config : configs) {
    EnclaveConfig ecfg;
    ecfg.space_bytes = 256 * kMiB;
    Enclave enclave(ecfg);
    Heap heap(&enclave, 64 * kMiB);
    StackAllocator stack(&enclave, 1 * kMiB);
    SgxBoundsRuntime rt(&enclave, &heap);
    Interpreter interp(&enclave, &heap, &stack);
    interp.AttachSgx(&rt);

    IrFunction fn = BuildCopyKernel(65536);
    SgxPassOptions options;
    options.elide_safe = config.elide;
    options.hoist_loops = config.hoist;
    const SgxPassStats stats = RunSgxBoundsPass(fn, options);
    Cpu& cpu = enclave.main_cpu();
    interp.Run(fn, cpu);
    if (baseline == 0) {
      baseline = cpu.cycles();
    }
    table.AddRow({config.name, std::to_string(stats.checks_inserted),
                  std::to_string(stats.checks_elided_safe),
                  std::to_string(stats.checks_hoisted), std::to_string(cpu.cycles()),
                  FormatDouble(static_cast<double>(cpu.cycles()) /
                                   static_cast<double>(baseline) * 100.0,
                               1) +
                      "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  int64_t threads = 8;
  std::string size = "S";
  parser.AddInt("threads", &threads, "worker threads");
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  PrintReproHeader("fig10_optimizations", MachineSpec{});
  std::printf("Figure 10: SGXBounds optimization ablation\n");
  std::printf("paper expectation: ~2%% average gain; up to ~20-22%% on kmeans/matrixmul "
              "(hoisting) and x264 (safe elision)\n\n");

  Table table({"benchmark", "none", "safe-elision", "hoisting", "all"});
  std::vector<double> g_none;
  std::vector<double> g_safe;
  std::vector<double> g_hoist;
  std::vector<double> g_all;
  std::vector<const WorkloadInfo*> workloads;
  for (const std::string suite : {"phoenix", "parsec"}) {
    for (const WorkloadInfo* w : WorkloadRegistry::Instance().BySuite(suite)) {
      workloads.push_back(w);
    }
  }

  // Five independent runs per workload (native + 4 optimization configs),
  // dispatched across host threads.
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = static_cast<uint32_t>(threads);
  struct Variant {
    const char* name;
    PolicyKind kind;
    PolicyOptions options;
  };
  const Variant variants[] = {{"native", PolicyKind::kNative, PolicyOptions{}},
                              {"none", PolicyKind::kSgxBounds, OptNone()},
                              {"safe", PolicyKind::kSgxBounds, OptSafe()},
                              {"hoist", PolicyKind::kSgxBounds, OptHoist()},
                              {"all", PolicyKind::kSgxBounds, OptAll()}};
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (const Variant& v : variants) {
      jobs.push_back({w->name + "/" + v.name, [w, &v, cfg] {
                        return w->run(v.kind, MachineSpec{}, v.options, cfg);
                      }});
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig10");

  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const RunResult* r = &results[wi * 5];
    const RunResult &native = r[0], &none = r[1], &safe = r[2], &hoist = r[3], &all = r[4];
    table.AddRow({workloads[wi]->name, PerfCell(none, native), PerfCell(safe, native),
                  PerfCell(hoist, native), PerfCell(all, native)});
    g_none.push_back(none.CyclesRatioOver(native));
    g_safe.push_back(safe.CyclesRatioOver(native));
    g_hoist.push_back(hoist.CyclesRatioOver(native));
    g_all.push_back(all.CyclesRatioOver(native));
  }
  table.AddSeparator();
  table.AddRow({"gmean", FormatRatio(GeoMean(g_none)), FormatRatio(GeoMean(g_safe)),
                FormatRatio(GeoMean(g_hoist)), FormatRatio(GeoMean(g_all))});
  table.Print();

  RunIrAblation();
  return 0;
}
