// Figure 8 + Table 3 reproduction: performance with increasing working-set
// sizes XS..XL, normalized to SGXBOUNDS (as the paper plots it), plus the
// Table 3 counter breakdown (LLC misses, page faults, MPX bounds tables).
//
// Paper expectation (SS6.3):
//   * kmeans: overheads hump at M (MPX's bounds tables spill the EPC while
//     SGXBounds still fits -> MPX up to ~8.3x), then converge at L/XL when
//     everyone thrashes;
//   * matrixmul: MPX ~on par with SGXBounds at every size (3 arrays, bounds
//     live in registers, 1 bounds table); ASan spikes hugely at XL when its
//     shadow breaks what cache locality is left.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  int64_t threads = 8;
  parser.AddInt("threads", &threads, "worker threads");
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  std::printf("Figure 8 + Table 3: increasing working sets (normalized to SGXBounds)\n");
  std::printf("paper expectation: kmeans MPX hump at M (~8x); matrixmul MPX ~1x always, "
              "ASan spike at XL; SGXBounds deviation across sizes ~2%%\n");

  const SizeClass sizes[] = {SizeClass::kXS, SizeClass::kS, SizeClass::kM, SizeClass::kL,
                             SizeClass::kXL};

  // Fan every (workload, size, policy) run out across host threads, then
  // print the per-workload tables from the collected results in order.
  std::vector<const WorkloadInfo*> workloads;
  for (const char* name : {"kmeans", "matrixmul", "wordcount", "linear_regression"}) {
    const WorkloadInfo* w = WorkloadRegistry::Instance().Find(name);
    if (w != nullptr) {
      workloads.push_back(w);
    }
  }
  constexpr size_t kNumSizes = sizeof(sizes) / sizeof(sizes[0]);
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (SizeClass size : sizes) {
      WorkloadConfig cfg;
      cfg.size = size;
      cfg.threads = static_cast<uint32_t>(threads);
      for (PolicyKind kind : kAllPolicies) {
        jobs.push_back({w->name + "/" + SizeClassName(size) + "/" + PolicyName(kind),
                        [w, cfg, kind] {
                          return w->run(kind, MachineSpec{}, PolicyOptions{}, cfg);
                        }});
      }
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig08");

  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const WorkloadInfo* w = workloads[wi];
    std::printf("\n== %s ==\n", w->name.c_str());
    Table perf({"size", "ws(native)", "SGX/SGXBnd", "MPX/SGXBnd", "ASan/SGXBnd"});
    Table counters({"size", "ASan LLC-miss%", "MPX LLC-miss%", "ASan faults(x)",
                    "MPX faults(x)", "MPX #BTs"});
    for (size_t si = 0; si < kNumSizes; ++si) {
      const SizeClass size = sizes[si];
      const SuiteRow row =
          MakeSuiteRow(w->name, &results[(wi * kNumSizes + si) * 4]);
      const RunResult& base = row.sgxb;
      auto ratio_cell = [&](const RunResult& r) {
        return r.crashed ? std::string("crash") : FormatRatio(r.CyclesRatioOver(base));
      };
      perf.AddRow({SizeClassName(size), FormatBytes(row.native.peak_vm_bytes),
                   ratio_cell(row.native), ratio_cell(row.mpx), ratio_cell(row.asan)});

      auto miss_pct = [](const RunResult& r, const RunResult& b) {
        if (r.crashed || b.counters.llc_misses == 0) {
          return std::string("-");
        }
        const double delta = (static_cast<double>(r.counters.llc_misses) -
                              static_cast<double>(b.counters.llc_misses)) /
                             static_cast<double>(b.counters.llc_misses) * 100.0;
        return FormatDouble(delta, 1);
      };
      auto fault_ratio = [](const RunResult& r, const RunResult& b) {
        if (r.crashed || b.counters.page_faults() == 0) {
          return std::string("-");
        }
        return FormatDouble(static_cast<double>(r.counters.page_faults()) /
                                static_cast<double>(b.counters.page_faults()),
                            1);
      };
      counters.AddRow({SizeClassName(size), miss_pct(row.asan, base), miss_pct(row.mpx, base),
                       fault_ratio(row.asan, base), fault_ratio(row.mpx, base),
                       row.mpx.crashed ? std::string("-")
                                       : std::to_string(row.mpx.mpx_bt_count)});
    }
    perf.Print();
    std::printf("-- Table 3 style counters (vs SGXBounds) --\n");
    counters.Print();
  }
  return 0;
}
