// Figure 8 + Table 3 reproduction: performance with increasing working-set
// sizes XS..XL, normalized to SGXBOUNDS (as the paper plots it), plus the
// Table 3 counter breakdown (LLC misses, page faults, MPX bounds tables).
//
// Paper expectation (SS6.3):
//   * kmeans: overheads hump at M (MPX's bounds tables spill the EPC while
//     SGXBounds still fits -> MPX up to ~8.3x), then converge at L/XL when
//     everyone thrashes;
//   * matrixmul: MPX ~on par with SGXBounds at every size (3 arrays, bounds
//     live in registers, 1 bounds table); ASan spikes hugely at XL when its
//     shadow breaks what cache locality is left.

#include "bench/bench_util.h"

#include <cstdlib>

#include "src/trace/record.h"
#include "src/trace/sweep.h"

namespace {

// EPC sweep (the working-set pressure axis): cycles and fault counts per EPC
// size, one table per workload. `--mode=live` re-executes the workload per
// point; `--mode=replay` executes once, records the trace, and re-simulates
// every point through EpcSweeper; `--mode=sweep` also executes once but
// routes the whole (workload x EPC) grid through the SweepEngine, which
// decodes each trace once, amortizes one capture per trace, and work-steals
// the grid across --bench_threads. All three print identical series —
// asserted by tests/trace_test.cc — so replay/sweep are purely wall-clock
// wins.
void RunEpcSweep(const std::vector<const sgxb::WorkloadInfo*>& workloads,
                 const std::vector<uint64_t>& epc_mibs, const std::string& mode,
                 sgxb::SizeClass size, sgxb::PolicyKind kind, uint32_t threads) {
  using namespace sgxb;
  std::printf("\nEPC sweep: %s, size %s, %zu point(s), mode=%s\n", PolicyName(kind),
              SizeClassName(size), epc_mibs.size(), mode.c_str());
  WorkloadConfig cfg;
  cfg.size = size;
  cfg.threads = threads;
  std::vector<std::vector<RunResult>> all_points(workloads.size());
  if (mode == "replay") {
    // One execution per workload (fanned across host threads), then every EPC
    // point comes from the sweeper in milliseconds.
    ParallelFor(workloads.size(), ResolveBenchThreads(), [&](size_t i) {
      const WorkloadInfo* w = workloads[i];
      const RecordedRun rec = RecordWorkloadRun(*w, kind, MachineSpec{}, PolicyOptions{}, cfg);
      const EpcSweeper sweeper(rec.trace, SimConfigFromHeader(rec.trace.header));
      for (uint64_t mib : epc_mibs) {
        all_points[i].push_back(ToRunResult(sweeper.ReplayAt(mib * kMiB), rec.trace));
      }
    });
  } else if (mode == "sweep") {
    // Record each workload once, then hand every (workload, EPC) cell to the
    // sweep engine as one batch.
    std::vector<RecordedRun> recs(workloads.size());
    ParallelFor(workloads.size(), ResolveBenchThreads(), [&](size_t i) {
      recs[i] = RecordWorkloadRun(*workloads[i], kind, MachineSpec{}, PolicyOptions{}, cfg);
    });
    std::vector<DecodedTrace> decoded;
    decoded.reserve(recs.size());
    for (const RecordedRun& rec : recs) {
      decoded.emplace_back(rec.trace);
    }
    std::vector<SweepRequest> grid;
    for (const DecodedTrace& d : decoded) {
      for (uint64_t mib : epc_mibs) {
        SweepRequest req;
        req.trace = &d;
        req.config = SimConfigFromHeader(d.header());
        req.config.epc_bytes = mib * kMiB;
        grid.push_back(req);
      }
    }
    SweepOptions opt;
    opt.threads = ResolveBenchThreads();
    SweepEngine engine(opt);
    const std::vector<ReplayResult> swept = engine.Run(grid);
    for (size_t i = 0; i < workloads.size(); ++i) {
      for (size_t j = 0; j < epc_mibs.size(); ++j) {
        all_points[i].push_back(ToRunResult(swept[i * epc_mibs.size() + j], decoded[i]));
      }
    }
  } else {
    std::vector<BenchJob> jobs;
    for (const WorkloadInfo* w : workloads) {
      for (uint64_t mib : epc_mibs) {
        MachineSpec spec;
        spec.epc_bytes = mib * kMiB;
        jobs.push_back({w->name + "/epc" + std::to_string(mib),
                        [w, kind, spec, cfg] { return w->run(kind, spec, PolicyOptions{}, cfg); }});
      }
    }
    const std::vector<RunResult> flat = RunBenchJobs(jobs, "fig08-epc");
    for (size_t i = 0; i < workloads.size(); ++i) {
      all_points[i].assign(flat.begin() + i * epc_mibs.size(),
                           flat.begin() + (i + 1) * epc_mibs.size());
    }
  }
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const WorkloadInfo* w = workloads[wi];
    const std::vector<RunResult>& points = all_points[wi];
    std::printf("\n== %s (%s) ==\n", w->name.c_str(), PolicyName(kind));
    Table table({"EPC MiB", "cycles", "EPC faults", "LLC misses", "vs largest"});
    const RunResult& base = points.back();
    for (size_t i = 0; i < epc_mibs.size(); ++i) {
      const RunResult& r = points[i];
      table.AddRow({std::to_string(epc_mibs[i]), std::to_string(r.cycles),
                    std::to_string(r.counters.epc_faults),
                    std::to_string(r.counters.llc_misses),
                    r.crashed ? std::string("crash") : FormatRatio(r.CyclesRatioOver(base))});
    }
    table.Print();
  }
}

std::vector<uint64_t> ParseMibList(const std::string& csv) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    const std::string tok = csv.substr(pos, comma - pos);
    if (!tok.empty()) {
      out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  int64_t threads = 8;
  std::string mode = "live";
  std::string epc_mibs_csv;
  std::string sweep_size = "S";
  std::string sweep_policy = "sgxbounds";
  parser.AddInt("threads", &threads, "worker threads");
  parser.AddChoice("mode", &mode, {"live", "replay", "sweep"},
                   "EPC sweep execution: live re-executes per point, replay records "
                   "once per workload, sweep batches the grid through the SweepEngine");
  parser.AddString("epc_mibs", &epc_mibs_csv,
                   "comma-separated EPC sizes in MiB; when set, runs the EPC sweep "
                   "instead of the working-set grid");
  parser.AddChoice("sweep_size", &sweep_size, SizeClassChoices(), "EPC sweep input size class");
  parser.AddChoice("sweep_policy", &sweep_policy, PolicyChoices(), "EPC sweep policy");
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  PrintReproHeader("fig08_working_set", MachineSpec{});

  std::vector<const WorkloadInfo*> sweep_workloads;
  for (const char* name : {"kmeans", "matrixmul", "wordcount", "linear_regression"}) {
    const WorkloadInfo* w = WorkloadRegistry::Instance().Find(name);
    if (w != nullptr) {
      sweep_workloads.push_back(w);
    }
  }

  if (!epc_mibs_csv.empty()) {
    const PolicyKind kind = ParsePolicyKind(sweep_policy);
    RunEpcSweep(sweep_workloads, ParseMibList(epc_mibs_csv), mode,
                ParseSizeClass(sweep_size), kind, static_cast<uint32_t>(threads));
    return 0;
  }

  std::printf("Figure 8 + Table 3: increasing working sets (normalized to SGXBounds)\n");
  std::printf("paper expectation: kmeans MPX hump at M (~8x); matrixmul MPX ~1x always, "
              "ASan spike at XL; SGXBounds deviation across sizes ~2%%\n");

  const SizeClass sizes[] = {SizeClass::kXS, SizeClass::kS, SizeClass::kM, SizeClass::kL,
                             SizeClass::kXL};

  // Fan every (workload, size, policy) run out across host threads, then
  // print the per-workload tables from the collected results in order.
  std::vector<const WorkloadInfo*> workloads;
  for (const char* name : {"kmeans", "matrixmul", "wordcount", "linear_regression"}) {
    const WorkloadInfo* w = WorkloadRegistry::Instance().Find(name);
    if (w != nullptr) {
      workloads.push_back(w);
    }
  }
  constexpr size_t kNumSizes = sizeof(sizes) / sizeof(sizes[0]);
  // This figure's analysis is intrinsically about the paper's four schemes
  // (everything is normalized to SGXBounds, Table 3 counts MPX tables).
  const std::vector<PolicyKind> grid = PaperPolicyKinds();
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (SizeClass size : sizes) {
      WorkloadConfig cfg;
      cfg.size = size;
      cfg.threads = static_cast<uint32_t>(threads);
      for (PolicyKind kind : grid) {
        jobs.push_back({w->name + "/" + SizeClassName(size) + "/" + PolicyName(kind),
                        [w, cfg, kind] {
                          return w->run(kind, MachineSpec{}, PolicyOptions{}, cfg);
                        }});
      }
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig08");

  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const WorkloadInfo* w = workloads[wi];
    std::printf("\n== %s ==\n", w->name.c_str());
    Table perf({"size", "ws(native)", "SGX/SGXBnd", "MPX/SGXBnd", "ASan/SGXBnd"});
    Table counters({"size", "ASan LLC-miss%", "MPX LLC-miss%", "ASan faults(x)",
                    "MPX faults(x)", "MPX #BTs"});
    for (size_t si = 0; si < kNumSizes; ++si) {
      const SizeClass size = sizes[si];
      const SuiteRow row =
          MakeSuiteRow(w->name, &results[(wi * kNumSizes + si) * grid.size()], grid);
      const RunResult& native = row.For(PolicyKind::kNative);
      const RunResult& mpx = row.For(PolicyKind::kMpx);
      const RunResult& asan = row.For(PolicyKind::kAsan);
      const RunResult& base = row.For(PolicyKind::kSgxBounds);
      auto ratio_cell = [&](const RunResult& r) {
        return r.crashed ? std::string("crash") : FormatRatio(r.CyclesRatioOver(base));
      };
      perf.AddRow({SizeClassName(size), FormatBytes(native.peak_vm_bytes),
                   ratio_cell(native), ratio_cell(mpx), ratio_cell(asan)});

      auto miss_pct = [](const RunResult& r, const RunResult& b) {
        if (r.crashed || b.counters.llc_misses == 0) {
          return std::string("-");
        }
        const double delta = (static_cast<double>(r.counters.llc_misses) -
                              static_cast<double>(b.counters.llc_misses)) /
                             static_cast<double>(b.counters.llc_misses) * 100.0;
        return FormatDouble(delta, 1);
      };
      auto fault_ratio = [](const RunResult& r, const RunResult& b) {
        if (r.crashed || b.counters.page_faults() == 0) {
          return std::string("-");
        }
        return FormatDouble(static_cast<double>(r.counters.page_faults()) /
                                static_cast<double>(b.counters.page_faults()),
                            1);
      };
      counters.AddRow({SizeClassName(size), miss_pct(asan, base), miss_pct(mpx, base),
                       fault_ratio(asan, base), fault_ratio(mpx, base),
                       mpx.crashed ? std::string("-") : std::to_string(mpx.mpx_bt_count)});
    }
    perf.Print();
    std::printf("-- Table 3 style counters (vs SGXBounds) --\n");
    counters.Print();
  }
  return 0;
}
