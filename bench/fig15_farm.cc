// fig15_farm: the paper's §6 server experiments at fleet scale.
//
// Sweeps offered load x shard count x policy over the in-sim services
// (kvstore/memcached/httpd/nginx/netserver), each farm a set of independent
// enclave shards behind consistent-hash routing (src/farm). Per sweep point
// it reports fleet throughput and p50/p99/p999 request latency — the
// throughput-vs-latency curves memaslap/ab produce in the paper — plus the
// ECALL/OCALL transition axis the paper's hardware could not isolate
// (--transitions=off|sync|switchless).
//
// Everything simulated is deterministic: --bench_threads changes only host
// wall-clock, never a result byte. --selfcheck re-runs a small fleet at 1
// and N host threads and fails on any digest mismatch (the CI gate).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/farm/farm.h"
#include "src/fault/fault.h"
#include "src/fault/shard_fault.h"

namespace sgxb {
namespace {

struct SweepPoint {
  std::string app;
  PolicyKind policy;
  uint32_t shards;
  uint32_t clients;   // closed loop
  double rps;         // open loop
  FarmResult result;
};

std::vector<uint64_t> ParseCsvU64(const std::string& csv, const char* flag) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) {
        std::fprintf(stderr, "--%s: '%s' is not a positive integer\n", flag, tok.c_str());
        std::exit(2);
      }
      out.push_back(v);
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--%s: empty list\n", flag);
    std::exit(2);
  }
  return out;
}

// Resolves --apps: csv of registered app names, or "all".
std::vector<FarmApp> ResolveApps(const std::string& csv) {
  std::vector<FarmApp> apps;
  if (csv == "all") {
    for (const std::string& name : FarmAppChoices()) {
      FarmApp a;
      ParseFarmApp(name, &a);
      apps.push_back(a);
    }
    return apps;
  }
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) {
      FarmApp a;
      if (!ParseFarmApp(tok, &a)) {
        std::string valid;
        for (const std::string& name : FarmAppChoices()) {
          valid += valid.empty() ? name : "|" + name;
        }
        std::fprintf(stderr, "--apps: unknown app '%s' (valid: %s|all)\n", tok.c_str(),
                     valid.c_str());
        std::exit(2);
      }
      apps.push_back(a);
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (apps.empty()) {
    std::fprintf(stderr, "--apps: empty list\n");
    std::exit(2);
  }
  return apps;
}

double CyclesToUs(double cycles, double ghz) { return cycles / (ghz * 1e3); }

void WriteFarmJson(const std::vector<SweepPoint>& points, const FarmConfig& proto,
                   const std::string& transitions) {
  std::FILE* f = std::fopen("BENCH_farm.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot write BENCH_farm.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"fig15_farm\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", proto.open_loop ? "open" : "closed");
  std::fprintf(f, "  \"transitions\": \"%s\",\n", transitions.c_str());
  std::fprintf(f, "  \"requests\": %" PRIu64 ",\n", proto.load.requests);
  std::fprintf(f, "  \"keyspace\": %" PRIu64 ",\n", proto.load.keyspace);
  std::fprintf(f, "  \"key_theta\": %.3f,\n", proto.load.key_theta);
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", proto.load.seed);
  std::fprintf(f, "  \"bench_threads\": %u,\n", ResolveBenchThreads());
  // Driver-provided summary block (fleet recovery/fault totals), installed
  // via SetBenchJsonSummary before this writer runs. Absent in fair-weather
  // runs so the historical layout is unchanged.
  if (!JsonState().summary_json.empty()) {
    std::fprintf(f, "  \"summary\": %s,\n", JsonState().summary_json.c_str());
  }
  std::fprintf(f, "  \"rows\": [");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const FarmResult& r = p.result;
    std::fprintf(f,
                 "%s\n    {\"app\": \"%s\", \"policy\": \"%s\", \"shards\": %u, "
                 "\"clients\": %u, \"offered_rps\": %.0f, \"served\": %" PRIu64
                 ", \"dropped\": %" PRIu64
                 ", \"throughput_rps\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"p999_us\": %.2f, \"ecalls\": %" PRIu64 ", \"ocalls\": %" PRIu64
                 ", \"transition_cycles\": %" PRIu64 ", \"total_cycles\": %" PRIu64
                 ", \"digest\": \"%016" PRIx64 "\"",
                 i == 0 ? "" : ",", p.app.c_str(), PolicyName(p.policy), p.shards,
                 p.clients, p.rps, r.served, r.dropped, r.throughput_rps,
                 CyclesToUs(r.latency.P50(), proto.ghz),
                 CyclesToUs(r.latency.P99(), proto.ghz),
                 CyclesToUs(r.latency.P999(), proto.ghz), r.totals.ecalls,
                 r.totals.ocalls, r.totals.transition_cycles, r.totals.cycles,
                 r.digest);
    // Gated extensions: rows from fair-weather runs stay byte-identical.
    if (proto.machine.recovery.enabled && r.recovery_totals.requests > 0) {
      std::fprintf(f,
                   ", \"recovery\": {\"contained\": %" PRIu64 ", \"retried\": %" PRIu64
                   ", \"recovered\": %" PRIu64 ", \"traps\": %" PRIu64
                   ", \"faults_injected\": %" PRIu64 "}",
                   r.recovery_totals.contained, r.recovery_totals.retried,
                   r.recovery_totals.recovered, r.recovery_totals.total_traps(),
                   r.fault_totals.total_injected());
    }
    if (r.resilience.enabled) {
      const ResilienceReport& rr = r.resilience;
      std::fprintf(f,
                   ", \"resilience\": {\"completed\": %" PRIu64
                   ", \"failed_app\": %" PRIu64 ", \"failed_timeout\": %" PRIu64
                   ", \"retries\": %" PRIu64 ", \"hedges\": %" PRIu64
                   ", \"hedge_wins\": %" PRIu64 ", \"detections\": %" PRIu64
                   ", \"convictions\": %" PRIu64 ", \"restarts\": %" PRIu64
                   ", \"failovers\": %" PRIu64 ", \"goodput_rps\": %.1f"
                   ", \"degraded_p99_us\": %.2f, \"healthy_p99_us\": %.2f"
                   ", \"digest\": \"%016" PRIx64 "\"}",
                   rr.completed, rr.failed_app, rr.failed_timeout, rr.retries,
                   rr.hedges, rr.hedge_wins, rr.detections, rr.convictions,
                   rr.restarts, rr.failovers, rr.goodput_rps,
                   CyclesToUs(rr.degraded.CappedQuantile(0.99), proto.ghz),
                   CyclesToUs(rr.healthy.CappedQuantile(0.99), proto.ghz),
                   rr.digest);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ],\n  \"scaling\": [");
  // 1 -> max-shard fleet-throughput scaling at the heaviest load, per
  // (app, policy): the headline "does the farm actually scale" number.
  struct Key {
    std::string app;
    PolicyKind policy;
    bool operator<(const Key& o) const {
      return app != o.app ? app < o.app : policy < o.policy;
    }
  };
  std::map<Key, std::map<uint32_t, double>> best;  // shards -> tput at max load
  std::map<Key, uint32_t> max_load;
  for (const SweepPoint& p : points) {
    const Key k{p.app, p.policy};
    const uint32_t load = p.clients != 0 ? p.clients : static_cast<uint32_t>(p.rps);
    if (load >= max_load[k]) {
      max_load[k] = load;
    }
  }
  for (const SweepPoint& p : points) {
    const Key k{p.app, p.policy};
    const uint32_t load = p.clients != 0 ? p.clients : static_cast<uint32_t>(p.rps);
    if (load == max_load[k]) {
      best[k][p.shards] = p.result.throughput_rps;
    }
  }
  bool first = true;
  for (const auto& [k, by_shards] : best) {
    if (by_shards.size() < 2) {
      continue;
    }
    const auto lo = by_shards.begin();
    const auto hi = std::prev(by_shards.end());
    std::fprintf(f,
                 "%s\n    {\"app\": \"%s\", \"policy\": \"%s\", \"shards_lo\": %u, "
                 "\"shards_hi\": %u, \"tput_lo_rps\": %.1f, \"tput_hi_rps\": %.1f, "
                 "\"scaling\": %.2f}",
                 first ? "" : ",", k.app.c_str(), PolicyName(k.policy), lo->first,
                 hi->first, lo->second, hi->second,
                 lo->second > 0 ? hi->second / lo->second : 0.0);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote BENCH_farm.json (%zu rows)\n", points.size());
}

int SelfCheck(FarmConfig proto) {
  // Small fleet, fixed seed, digest pinned across host thread counts.
  proto.app = FarmApp::kKvStore;
  proto.policy = PolicyKind::kSgxBounds;
  proto.shards = 4;
  proto.load.requests = 4000;
  proto.load.clients = 16;
  int failures = 0;
  for (FarmApp app : {FarmApp::kKvStore, FarmApp::kMemcached}) {
    proto.app = app;
    uint64_t reference = 0;
    for (uint32_t threads : {1u, 4u, 16u}) {
      proto.host_threads = threads;
      const FarmResult r = RunFarm(proto);
      if (threads == 1) {
        reference = r.digest;
      }
      const bool ok = r.digest == reference;
      std::printf("[selfcheck] app=%s threads=%u digest=%016" PRIx64 " %s\n",
                  FarmAppName(app), threads, r.digest, ok ? "ok" : "MISMATCH");
      failures += ok ? 0 : 1;
    }
  }
  std::printf("[selfcheck] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  FlagParser parser;
  AddBenchDriverFlags(parser);
  AddPoliciesFlag(parser);
  std::string apps_csv = "kvstore,memcached,httpd";
  std::string shards_csv = "1,2,4,8";
  std::string clients_csv = "1,8,32,128";
  std::string rps_csv = "50000,200000,800000";
  std::string mode = "closed";
  std::string transitions = "sync";
  uint64_t requests = 20000;
  uint64_t keyspace = 4096;
  double key_theta = 0.0;
  double client_theta = 0.0;
  uint64_t think = 0;
  uint64_t seed = 42;
  uint64_t vnodes = 64;
  std::string faults_spec;
  std::string shard_faults_spec;
  std::string recovery = "off";
  bool selfcheck = false;
  parser.AddString("apps", &apps_csv,
                   "comma-separated farm apps (kvstore|memcached|httpd|nginx|netserver|all)");
  parser.AddString("shards", &shards_csv, "comma-separated shard counts to sweep");
  parser.AddString("clients", &clients_csv,
                   "closed loop: comma-separated client counts (the offered-load axis)");
  parser.AddString("rps", &rps_csv,
                   "open loop: comma-separated offered requests/second");
  parser.AddChoice("mode", &mode, {"closed", "open"},
                   "arrival process: closed-loop clients or open-loop Poisson");
  parser.AddChoice("transitions", &transitions, {"off", "sync", "switchless"},
                   "enclave transition cost axis: disabled, synchronous "
                   "ECALL/OCALL world switches, or switchless host calls");
  parser.AddUint("requests", &requests, "requests per farm run");
  parser.AddUint("keyspace", &keyspace, "distinct keys");
  parser.AddDouble("key_theta", &key_theta, "Zipf exponent for key skew (0 = uniform)");
  parser.AddDouble("client_theta", &client_theta,
                   "Zipf exponent for client fan-in skew (0 = uniform)");
  parser.AddUint("think", &think, "closed loop: think cycles between requests");
  parser.AddUint("seed", &seed, "load generator seed");
  parser.AddUint("vnodes", &vnodes, "ring points per shard");
  parser.AddString("faults", &faults_spec,
                   "per-enclave fault campaign replicated into every shard "
                   "(KIND@TRIGGER:AT[*N][+P][;...][;seed=N], see src/fault); "
                   "enables per-request trap recovery");
  parser.AddString("shard_faults", &shard_faults_spec,
                   "shard-scoped fault plan (KIND@SHARD:REQUEST[;...][;seed=N], "
                   "KIND=crash|hang|epc_storm|poison); enables the resilient "
                   "timing pass");
  parser.AddChoice("recovery", &recovery,
                   {"off", "failstop", "restart", "failover", "failover+hedge"},
                   "farm recovery policy for the resilient timing pass "
                   "(off = classic fair-weather phase B; --shard_faults "
                   "without --recovery runs failstop)");
  parser.AddBool("selfcheck", &selfcheck,
                 "run the small-fleet digest check across host thread counts and exit");
  parser.Parse(argc, argv);

  FarmConfig proto;
  proto.vnodes = static_cast<uint32_t>(vnodes);
  proto.load.requests = requests;
  proto.load.keyspace = keyspace;
  proto.load.key_theta = key_theta;
  proto.load.client_theta = client_theta;
  proto.load.seed = seed;
  proto.think_cycles = think;
  proto.open_loop = mode == "open";
  proto.host_threads = ResolveBenchThreads();
  proto.machine.seed = seed;
  if (transitions == "sync") {
    proto.machine.costs.EnableTransitions(/*use_switchless=*/false);
  } else if (transitions == "switchless") {
    proto.machine.costs.EnableTransitions(/*use_switchless=*/true);
  }
  if (!faults_spec.empty()) {
    std::string error;
    if (!FaultPlan::Parse(faults_spec, &proto.faults, &error)) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      return 2;
    }
    // Injected traps must be contained per request, not kill the shard run.
    proto.machine.recovery.enabled = true;
  }
  if (!shard_faults_spec.empty()) {
    std::string error;
    if (!ShardFaultPlan::Parse(shard_faults_spec, &proto.resilience.shard_faults,
                               &error)) {
      std::fprintf(stderr, "--shard_faults: %s\n", error.c_str());
      return 2;
    }
    proto.resilience.enabled = true;
    proto.machine.recovery.enabled = true;  // classify contained traps
  }
  if (recovery != "off") {
    ParseRecoveryMode(recovery, &proto.resilience.mode);
    proto.resilience.enabled = true;
    proto.machine.recovery.enabled = true;
  }
  PrintReproHeader("farm", proto.machine);
  std::printf("[farm] transitions=%s ecall=%u ocall=%" PRIu64 " mode=%s\n",
              transitions.c_str(), proto.machine.costs.ecall,
              proto.machine.costs.OcallCost(), mode.c_str());
  if (proto.resilience.enabled || !proto.faults.empty()) {
    std::printf("[farm] recovery=%s shard_faults=%s faults=%s\n",
                proto.resilience.enabled ? RecoveryModeName(proto.resilience.mode)
                                         : "off",
                proto.resilience.shard_faults.empty()
                    ? "none"
                    : proto.resilience.shard_faults.ToSpec().c_str(),
                proto.faults.empty() ? "none" : proto.faults.ToSpec().c_str());
  }

  if (selfcheck) {
    return SelfCheck(proto);
  }

  const std::vector<FarmApp> apps = ResolveApps(apps_csv);
  const std::vector<PolicyKind> policies = ResolvePolicies();
  const std::vector<uint64_t> shard_counts = ParseCsvU64(shards_csv, "shards");
  const std::vector<uint64_t> loads = proto.open_loop ? ParseCsvU64(rps_csv, "rps")
                                                      : ParseCsvU64(clients_csv, "clients");

  std::vector<SweepPoint> points;
  for (const FarmApp app : apps) {
    for (const PolicyKind policy : policies) {
      std::printf("\n== %s / %s : throughput vs latency ==\n", FarmAppName(app),
                  PolicyName(policy));
      Table table({"shards", proto.open_loop ? "rps" : "clients", "served", "dropped",
                   "tput kop/s", "p50 us", "p99 us", "p999 us", "ecalls", "ocalls",
                   "trans%"});
      for (const uint64_t shards : shard_counts) {
        for (const uint64_t load : loads) {
          FarmConfig cfg = proto;
          cfg.app = app;
          cfg.policy = policy;
          cfg.shards = static_cast<uint32_t>(shards);
          if (cfg.open_loop) {
            cfg.offered_rps = static_cast<double>(load);
          } else {
            cfg.load.clients = static_cast<uint32_t>(load);
          }
          std::fprintf(stderr, "[farm] %s/%s shards=%" PRIu64 " load=%" PRIu64 "...\n",
                       FarmAppName(app), PolicyName(policy), shards, load);
          const FarmResult r = RunFarm(cfg);
          const double trans_pct =
              r.totals.cycles == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(r.totals.transition_cycles) /
                        static_cast<double>(r.totals.cycles);
          table.AddRow({std::to_string(shards), std::to_string(load),
                        std::to_string(r.served), std::to_string(r.dropped),
                        FormatDouble(r.throughput_rps / 1000.0, 1),
                        FormatDouble(CyclesToUs(r.latency.P50(), cfg.ghz), 1),
                        FormatDouble(CyclesToUs(r.latency.P99(), cfg.ghz), 1),
                        FormatDouble(CyclesToUs(r.latency.P999(), cfg.ghz), 1),
                        std::to_string(r.totals.ecalls), std::to_string(r.totals.ocalls),
                        FormatDouble(trans_pct, 1)});
          if (r.resilience.enabled) {
            const ResilienceReport& rr = r.resilience;
            std::printf("[resilience] shards=%" PRIu64 " load=%" PRIu64
                        " completed=%" PRIu64 " failed_app=%" PRIu64
                        " failed_timeout=%" PRIu64 " retries=%" PRIu64
                        " hedges=%" PRIu64 "/%" PRIu64 " detections=%" PRIu64
                        " convictions=%" PRIu64 " restarts=%" PRIu64
                        " failovers=%" PRIu64 " goodput=%.1f kop/s\n",
                        shards, load, rr.completed, rr.failed_app, rr.failed_timeout,
                        rr.retries, rr.hedge_wins, rr.hedges, rr.detections,
                        rr.convictions, rr.restarts, rr.failovers,
                        rr.goodput_rps / 1000.0);
          }
          if (cfg.machine.recovery.enabled && r.recovery_totals.requests > 0) {
            std::printf("[recovery] contained=%" PRIu64 " retried=%" PRIu64
                        " recovered=%" PRIu64 " traps=%" PRIu64
                        " faults_injected=%" PRIu64 "\n",
                        r.recovery_totals.contained, r.recovery_totals.retried,
                        r.recovery_totals.recovered, r.recovery_totals.total_traps(),
                        r.fault_totals.total_injected());
          }
          SweepPoint p;
          p.app = FarmAppName(app);
          p.policy = policy;
          p.shards = static_cast<uint32_t>(shards);
          p.clients = cfg.open_loop ? 0 : cfg.load.clients;
          p.rps = cfg.open_loop ? cfg.offered_rps : 0.0;
          p.result = r;
          points.push_back(std::move(p));
        }
        table.AddSeparator();
      }
      table.Print();
    }
  }

  if (JsonFlag()) {
    // Fleet recovery/fault/resilience totals as the shared summary block
    // (SetBenchJsonSummary), then the farm writer emits it inside
    // BENCH_farm.json. Skipped entirely in fair-weather runs.
    if (proto.machine.recovery.enabled || proto.resilience.enabled) {
      RecoveryStats rec;
      uint64_t injected = 0;
      uint64_t completed = 0;
      uint64_t failed = 0;
      for (const SweepPoint& p : points) {
        rec.contained += p.result.recovery_totals.contained;
        rec.retried += p.result.recovery_totals.retried;
        rec.recovered += p.result.recovery_totals.recovered;
        rec.requests += p.result.recovery_totals.requests;
        injected += p.result.fault_totals.total_injected();
        completed += p.result.resilience.completed;
        failed += p.result.resilience.failed_app + p.result.resilience.failed_timeout;
      }
      char summary[512];
      std::snprintf(summary, sizeof summary,
                    "{\"recovery\": \"%s\", \"requests\": %" PRIu64
                    ", \"contained\": %" PRIu64 ", \"retried\": %" PRIu64
                    ", \"recovered\": %" PRIu64 ", \"faults_injected\": %" PRIu64
                    ", \"resilient_completed\": %" PRIu64
                    ", \"resilient_failed\": %" PRIu64 "}",
                    proto.resilience.enabled ? RecoveryModeName(proto.resilience.mode)
                                             : "off",
                    rec.requests, rec.contained, rec.retried, rec.recovered, injected,
                    completed, failed);
      SetBenchJsonSummary(summary);
    }
    WriteFarmJson(points, proto, transitions);
  }
  return 0;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) { return sgxb::Main(argc, argv); }
