// SS7 security reproductions: the three real-world vulnerabilities the paper
// replays inside the enclave, under each defense and under SGXBounds'
// boundless-memory mode.
//
// Paper expectation:
//   Heartbleed (Apache+OpenSSL): detected by all three; SGXBounds+boundless
//     answers the heartbeat with zeros and Apache keeps serving.
//   CVE-2011-4971 (Memcached): detected by all three; ASan/MPX halt;
//     SGXBounds+boundless discards the packet (the paper notes the program
//     then spins in its own logic).
//   CVE-2013-2028 (Nginx): detected by all three; SGXBounds+boundless drops
//     the request and keeps serving.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/httpd.h"
#include "src/apps/memcached.h"
#include "src/apps/nginx_app.h"
#include "src/common/table.h"

namespace sgxb {
namespace {

std::string HeartbleedOutcome(PolicyKind kind, OobPolicy oob) {
  PolicyOptions options;
  options.oob = oob;
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 1 * kGiB;
  std::string outcome;
  const RunResult r = RunPolicyKind(kind, spec, options, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    Httpd<P> server(&env.policy, &env.cpu, &shim);
    bool survived = false;
    // A 16x over-read: far enough to cover the adjacent key material, small
    // enough to stay within the process's committed heap (like the real
    // attack, which harvested live heap rather than unmapped pages).
    const auto echoed = server.Heartbeat(16, 256, &survived);
    bool leaked = false;
    for (size_t i = 16; i < echoed.size(); ++i) {
      if (echoed[i] != 0) {
        leaked = true;
        break;
      }
    }
    const uint32_t cid = server.OpenConnection();
    server.ServeGet(cid, "GET / HTTP/1.1\r\n\r\n");
    outcome = leaked ? "SECRET LEAKED, server alive" : "no leak (zeros), server alive";
  });
  if (r.crashed) {
    return std::string("detected: ") + TrapKindName(r.trap) + ", server halted";
  }
  return outcome;
}

std::string MemcachedOutcome(PolicyKind kind, OobPolicy oob) {
  PolicyOptions options;
  options.oob = oob;
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 1 * kGiB;
  std::string outcome;
  const RunResult r = RunPolicyKind(kind, spec, options, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    Memcached<P> cache(&env.policy, &env.cpu, &shim);
    std::string detail;
    const bool ok = cache.HandleBinarySet(-1, &detail);
    cache.Set(1, 64);
    outcome = ok ? "request handled, server alive"
                 : "heap corrupted silently, server alive (DoS latent)";
    if (!ok && oob == OobPolicy::kBoundless) {
      outcome = "packet content discarded to overlay, server alive";
    }
  });
  if (r.crashed) {
    return std::string("detected: ") + TrapKindName(r.trap) + ", server halted";
  }
  return outcome;
}

std::string NginxOutcome(PolicyKind kind, OobPolicy oob) {
  PolicyOptions options;
  options.oob = oob;
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 1 * kGiB;
  std::string outcome;
  const RunResult r = RunPolicyKind(kind, spec, options, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    NginxApp<P> server(&env.policy, &env.cpu, &shim);
    bool survived = false;
    std::string detail;
    const bool smashed = server.ChunkedRequest("fffffffffffffff0", &survived, &detail);
    if (smashed) {
      outcome = "STACK SMASHED (ROP possible), server alive";
    } else if (!survived) {
      // The defense trapped mid-copy: the worker process dies and nginx's
      // master must respawn it (fail-stop detection).
      outcome = "detected, worker killed (master respawns)";
    } else if (server.StillServing()) {
      outcome = "request dropped, server alive";
    } else {
      outcome = "server wedged";
    }
  });
  if (r.crashed) {
    return std::string("detected: ") + TrapKindName(r.trap) + ", worker halted";
  }
  return outcome;
}

}  // namespace
}  // namespace sgxb

int main() {
  using namespace sgxb;
  PrintReproHeader("sec7_case_attacks", MachineSpec{});
  std::printf("SS7 security case studies inside the enclave\n\n");

  struct Row {
    const char* name;
    std::string (*fn)(PolicyKind, OobPolicy);
  };
  const Row rows[] = {
      {"Heartbleed (Apache+OpenSSL analogue)", HeartbleedOutcome},
      {"CVE-2011-4971 (Memcached analogue)", MemcachedOutcome},
      {"CVE-2013-2028 (Nginx analogue)", NginxOutcome},
  };

  // One row per registered scheme; schemes that claim boundless mode get a
  // second row with the overlay enabled.
  for (const Row& row : rows) {
    std::printf("== %s ==\n", row.name);
    Table t({"defense", "outcome"});
    for (const SchemeDescriptor* d : AllSchemes()) {
      const bool boundless = d->caps.supports_boundless;
      t.AddRow({boundless ? std::string(d->name) + " (fail-fast)" : std::string(d->name),
                row.fn(d->kind, OobPolicy::kFailFast)});
      if (boundless) {
        t.AddRow({std::string(d->name) + " (boundless)",
                  row.fn(d->kind, OobPolicy::kBoundless)});
      }
    }
    t.Print();
    std::printf("\n");
  }
  return 0;
}
