// Fault-injection campaigns (Table-4-style robustness matrix).
//
// The paper's Table 4 shows which *bugs* each scheme detects; this driver
// shows what each scheme's whole stack (detection + trap recovery +
// containment) does under *injected* faults: seeded campaigns of allocation
// failures, wild writes, EPC eviction storms, and metadata corruption, run
// against the oracle-checked kvstore service under every policy.
//
// Outcome buckets per run:
//   C clean      - faults injected (or none), service unaffected
//   D detected   - every fault surfaced as a trap; requests contained/retried
//   S silent     - the oracle caught wrong answers and no trap ever fired
//   X damaged    - traps fired AND the oracle still caught wrong answers
//   F fatal      - a trap escaped recovery and ended the run
//
// Everything is a pure function of --seed: two invocations with the same
// flags produce byte-identical stdout and --json output.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/contained_service.h"
#include "src/fault/fault.h"

namespace sgxb {
namespace {

const char* const kClassNames[] = {"none",      "alloc_fail",    "wild_write",
                                   "epc_storm", "metadata_flip", "mixed"};
constexpr int kClassCount = 6;
constexpr int kClassNone = 0;
constexpr int kClassMixed = 5;

enum class Outcome { kClean, kDetected, kSilent, kDamaged, kFatal };

struct CellRun {
  PolicyKind policy = PolicyKind::kNative;
  int fault_class = kClassNone;
  uint32_t campaign = 0;
  int plan_index = -1;  // into the plans vector; -1 = no faults
  RunResult run;
  OracleKvResult kv;
};

Outcome Classify(const CellRun& cell) {
  if (cell.run.crashed) {
    return Outcome::kFatal;
  }
  const bool corrupted = cell.kv.oracle_mismatches > 0;
  const bool trapped = cell.run.recovery_stats.total_traps() > 0;
  if (corrupted && trapped) {
    return Outcome::kDamaged;
  }
  if (corrupted) {
    return Outcome::kSilent;
  }
  if (trapped) {
    return Outcome::kDetected;
  }
  return Outcome::kClean;
}

// "2D 1C"-style aggregate of N campaign outcomes, fixed C,D,S,X,F order.
std::string OutcomeCell(const std::vector<Outcome>& outcomes) {
  uint32_t counts[5] = {};
  for (const Outcome o : outcomes) {
    ++counts[static_cast<int>(o)];
  }
  static const char kLetters[5] = {'C', 'D', 'S', 'X', 'F'};
  std::string cell;
  for (int i = 0; i < 5; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (!cell.empty()) {
      cell += ' ';
    }
    cell += std::to_string(counts[i]);
    cell += kLetters[i];
  }
  return cell.empty() ? "-" : cell;
}

uint64_t TrapTotal(const CellRun& c) { return c.run.recovery_stats.total_traps(); }

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  uint64_t seed = 42;
  int64_t campaigns = 3;
  uint64_t requests = 2000;
  uint64_t keyspace = 512;
  uint64_t value_bytes = 64;
  int64_t events = 6;
  std::string faults_spec;
  std::string fault_class = "all";
  bool json = false;
  std::string json_out = "BENCH_fig14_fault_campaign.json";
  parser.AddUint("seed", &seed, "base campaign seed; all randomness derives from it");
  parser.AddInt("campaigns", &campaigns, "seeded campaigns per (policy, fault class) cell");
  parser.AddUint("requests", &requests, "kvstore requests per run");
  parser.AddUint("keyspace", &keyspace, "distinct keys in the request stream");
  parser.AddUint("value_bytes", &value_bytes, "value blob size per row");
  parser.AddInt("events", &events, "fault events per campaign");
  parser.AddString("faults", &faults_spec,
                   "explicit fault plan spec (see src/fault/fault.h); replaces the "
                   "generated campaign classes with this single plan");
  parser.AddChoice("fault_class", &fault_class,
                   {"all", "none", "alloc_fail", "wild_write", "epc_storm",
                    "metadata_flip", "mixed"},
                   "restrict the generated campaigns to one fault class");
  parser.AddBool("json", &json, "also write the full per-run matrix to --json_out");
  parser.AddString("json_out", &json_out, "JSON output path");
  parser.AddInt("bench_threads", &BenchThreadsFlag(),
                "host threads for dispatching independent runs (0 = hardware concurrency)");
  AddPoliciesFlag(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  FaultPlan custom_plan;
  const bool custom = !faults_spec.empty();
  if (custom) {
    std::string error;
    if (!FaultPlan::Parse(faults_spec, &custom_plan, &error)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", error.c_str());
      return 2;
    }
  }

  MachineSpec base;
  base.seed = seed;
  PrintReproHeader("fig14_fault_campaign", base);
  // The trigger space campaigns draw their firing points from. A kvstore
  // request costs ~10-20 guest accesses under the native policy (more under
  // instrumented ones), so requests*8 keeps every campaign point inside the
  // run for all four policies.
  const uint64_t span = requests * 8;
  std::printf("Fault campaigns: outcome matrix per (fault class x policy)\n");
  std::printf("campaigns=%lld requests=%llu keyspace=%llu events=%lld span=%llu seed=%llu\n",
              static_cast<long long>(campaigns), static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(keyspace), static_cast<long long>(events),
              static_cast<unsigned long long>(span), static_cast<unsigned long long>(seed));
  std::printf("buckets: C=clean D=detected/contained S=silent-corruption X=damaged F=fatal\n");

  // Build every plan first (cells reference them by index; the vector must
  // not reallocate once runs start).
  std::vector<FaultPlan> plans;
  std::vector<CellRun> cells;
  const uint32_t n_campaigns = static_cast<uint32_t>(campaigns < 1 ? 1 : campaigns);
  const uint32_t n_events = static_cast<uint32_t>(events < 1 ? 1 : events);
  const int first_class = custom ? kClassCount : 0;  // kClassCount = "custom" pseudo-class
  if (custom) {
    plans.push_back(custom_plan);
    for (PolicyKind kind : policies) {
      cells.push_back({kind, first_class, 0, 0});
    }
  } else {
    for (int cls = 0; cls < kClassCount; ++cls) {
      if (fault_class != "all" && fault_class != kClassNames[cls]) {
        continue;
      }
      for (uint32_t c = 0; c < (cls == kClassNone ? 1u : n_campaigns); ++c) {
        int plan_index = -1;
        if (cls != kClassNone) {
          const uint64_t campaign_seed = seed + 1000ull * c + static_cast<uint64_t>(cls);
          plans.push_back(cls == kClassMixed
                              ? FaultPlan::Mixed(campaign_seed, n_events, span)
                              : FaultPlan::Campaign(static_cast<FaultKind>(cls - 1),
                                                    campaign_seed, n_events, span));
          plan_index = static_cast<int>(plans.size()) - 1;
        }
        for (PolicyKind kind : policies) {
          cells.push_back({kind, cls, c, plan_index});
        }
      }
    }
  }

  const uint32_t threads = ResolveBenchThreads();
  std::fprintf(stderr, "[fig14] dispatching %zu runs over %u host thread(s)\n", cells.size(),
               threads);
  ParallelFor(cells.size(), threads, [&](size_t i) {
    CellRun& cell = cells[i];
    MachineSpec spec;
    spec.seed = seed;
    spec.recovery.enabled = true;
    if (cell.plan_index >= 0) {
      spec.faults = &plans[cell.plan_index];
    }
    OracleKvResult kv;
    cell.run = RunPolicyKind(cell.policy, spec, PolicyOptions{}, [&](auto& env) {
      kv = RunOracleKvCampaign(env, requests, static_cast<uint64_t>(keyspace),
                               static_cast<uint32_t>(value_bytes), seed);
    });
    cell.kv = kv;
  });

  // --- outcome matrix -------------------------------------------------------------
  const int total_classes = custom ? kClassCount + 1 : kClassCount;
  auto class_name = [&](int cls) {
    return cls == kClassCount ? "custom" : kClassNames[cls];
  };
  std::printf("\n== outcome matrix ==\n");
  std::vector<std::string> matrix_head{"fault class"};
  for (PolicyKind kind : policies) {
    matrix_head.emplace_back(SchemeOf(kind).id);
  }
  Table matrix(matrix_head);
  for (int cls = custom ? kClassCount : 0; cls < total_classes; ++cls) {
    if (cls < kClassCount && fault_class != "all" && fault_class != kClassNames[cls]) {
      continue;
    }
    std::vector<std::string> row = {class_name(cls)};
    for (PolicyKind kind : policies) {
      std::vector<Outcome> outcomes;
      for (const CellRun& cell : cells) {
        if (cell.fault_class == cls && cell.policy == kind) {
          outcomes.push_back(Classify(cell));
        }
      }
      row.push_back(OutcomeCell(outcomes));
    }
    matrix.AddRow(row);
  }
  matrix.Print();

  // --- per-cell detail (summed over the campaigns of each cell) -------------------
  std::printf("\n== campaign detail (sums over campaigns) ==\n");
  Table detail({"fault class", "policy", "inj", "skip", "traps", "retried", "recovered",
                "contained", "served", "dropped", "mismatch"});
  for (int cls = custom ? kClassCount : 0; cls < total_classes; ++cls) {
    for (PolicyKind kind : policies) {
      uint64_t inj = 0, skip = 0, traps = 0, retried = 0, recovered = 0, contained = 0,
               served = 0, dropped = 0, mismatch = 0;
      bool any = false;
      for (const CellRun& cell : cells) {
        if (cell.fault_class != cls || cell.policy != kind) {
          continue;
        }
        any = true;
        inj += cell.run.fault_stats.total_injected();
        skip += cell.run.fault_stats.skipped;
        traps += TrapTotal(cell);
        retried += cell.run.recovery_stats.retried;
        recovered += cell.run.recovery_stats.recovered;
        contained += cell.run.recovery_stats.contained;
        served += cell.kv.served;
        dropped += cell.kv.dropped;
        mismatch += cell.kv.oracle_mismatches;
      }
      if (!any) {
        continue;
      }
      auto u = [](uint64_t v) { return std::to_string(v); };
      detail.AddRow({class_name(cls), PolicyName(kind), u(inj), u(skip), u(traps), u(retried),
                     u(recovered), u(contained), u(served), u(dropped), u(mismatch)});
    }
  }
  detail.Print();

  if (json) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"seed\": %llu,\n  \"campaigns\": %u,\n  \"requests\": %llu,\n",
                 static_cast<unsigned long long>(seed), n_campaigns,
                 static_cast<unsigned long long>(requests));
    std::fprintf(f, "  \"runs\": [");
    for (size_t i = 0; i < cells.size(); ++i) {
      const CellRun& c = cells[i];
      static const char* const kOutcomeNames[] = {"clean", "detected", "silent", "damaged",
                                                  "fatal"};
      // One entry per TrapKind; sized from the enum so a new trap kind
      // (e.g. a plugged-in scheme's) extends the array automatically.
      std::string traps_by_kind;
      for (uint32_t t = 0; t < kTrapKindCount; ++t) {
        if (t != 0) {
          traps_by_kind += ", ";
        }
        traps_by_kind += std::to_string(c.run.recovery_stats.trap_by_kind[t]);
      }
      std::fprintf(f,
                   "%s\n    {\"class\": \"%s\", \"policy\": \"%s\", \"campaign\": %u, "
                   "\"plan\": \"%s\", \"outcome\": \"%s\", \"cycles\": %llu, "
                   "\"served\": %llu, \"dropped\": %llu, \"oracle_checks\": %llu, "
                   "\"oracle_mismatches\": %llu, \"injected\": %llu, \"skipped\": %llu, "
                   "\"retried\": %llu, \"recovered\": %llu, \"contained\": %llu, "
                   "\"watchdog_kills\": %llu, \"crashed\": %s, \"trap\": \"%s\", "
                   "\"traps_by_kind\": [%s]}",
                   i == 0 ? "" : ",", class_name(c.fault_class), PolicyName(c.policy),
                   c.campaign,
                   c.plan_index >= 0 ? JsonEscape(plans[c.plan_index].ToSpec()).c_str() : "",
                   kOutcomeNames[static_cast<int>(Classify(c))],
                   static_cast<unsigned long long>(c.run.cycles),
                   static_cast<unsigned long long>(c.kv.served),
                   static_cast<unsigned long long>(c.kv.dropped),
                   static_cast<unsigned long long>(c.kv.oracle_checks),
                   static_cast<unsigned long long>(c.kv.oracle_mismatches),
                   static_cast<unsigned long long>(c.run.fault_stats.total_injected()),
                   static_cast<unsigned long long>(c.run.fault_stats.skipped),
                   static_cast<unsigned long long>(c.run.recovery_stats.retried),
                   static_cast<unsigned long long>(c.run.recovery_stats.recovered),
                   static_cast<unsigned long long>(c.run.recovery_stats.contained),
                   static_cast<unsigned long long>(c.run.recovery_stats.watchdog_kills),
                   c.run.crashed ? "true" : "false",
                   c.run.crashed ? TrapKindName(c.run.trap) : "", traps_by_kind.c_str());
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\njson: %s (%zu runs)\n", json_out.c_str(), cells.size());
  }
  return 0;
}
