// sweep_tool: drive the parallel sweep engine over a (trace x SimConfig)
// grid and measure it against the sequential-replay baseline.
//
//   sweep_tool --workloads=kmeans,matrixmul --policies=sgxbounds,sgx \
//              --epc_points=16 --cost_points=2 --modes=both --mode=verify
//
// The grid is the cross product of three config axes per recorded trace:
//   EPC size   : --epc_points sizes, linearly spaced over [--epc_min_mib,
//                --epc_max_mib]
//   cost table : --cost_points tables; table i scales the memory-pressure
//                prices (dram, mee_line, epc_fault) by (100 + 50*i)%
//   enclave    : --modes=on|off|both
//   L3 size    : --l3_points geometries (size >> i). Points beyond the first
//                change cache outcomes, so the engine must fall back to full
//                replay for them — included to exercise that path.
//
// --mode selects what runs: `sweep` (the engine), `sequential` (one full
// ReplayDecoded per config on one thread — the baseline the engine is
// benchmarked against), or `verify` (both, asserting bit-identical results).
// Stdout — a per-trace digest table — is identical across modes and thread
// counts; host timings go to stderr and, under --json, to BENCH_sweep.json.
//
// Traces either come from fresh recordings (--workloads x --policies) or
// from saved files (--traces=a.sgxtrace,b.sgxtrace — mmap-loaded).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/trace/record.h"
#include "src/trace/sweep.h"
#include "src/trace/trace_io.h"

namespace sgxb {
namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    if (comma > pos) {
      out.push_back(csv.substr(pos, comma - pos));
    }
    pos = comma + 1;
  }
  return out;
}

// FNV-fold a result into a digest: any single-bit divergence from the
// sequential baseline shows up here (and fails --mode=verify outright).
uint64_t FoldResult(uint64_t h, const ReplayResult& r) {
  const uint64_t words[] = {r.cycles, r.counters.cycles, r.counters.llc_misses,
                            r.counters.epc_faults, r.counters.minor_faults};
  for (uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool SameResult(const ReplayResult& a, const ReplayResult& b) {
  return a.cycles == b.cycles && a.counters == b.counters &&
         a.cpu_count == b.cpu_count && a.events_replayed == b.events_replayed;
}

struct GridAxes {
  std::vector<uint64_t> epc_bytes;
  std::vector<CostModel> costs;
  std::vector<bool> enclave;
  std::vector<uint32_t> l3_shift;
};

std::vector<SimConfig> BuildConfigs(const TraceHeader& header, const GridAxes& axes) {
  const SimConfig base = SimConfigFromHeader(header);
  std::vector<SimConfig> out;
  for (uint32_t shift : axes.l3_shift) {
    for (bool enclave : axes.enclave) {
      for (const CostModel& costs : axes.costs) {
        for (uint64_t epc : axes.epc_bytes) {
          SimConfig cfg = base;
          cfg.l3_bytes = base.l3_bytes >> shift;
          cfg.enclave_mode = enclave;
          cfg.costs = costs;
          cfg.epc_bytes = epc;
          out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

int Main(int argc, char** argv) {
  FlagParser parser;
  std::string workloads_csv = "kmeans,matrixmul";
  std::string traces_csv;
  std::string size = "S";
  std::string mode = "sweep";
  std::string modes = "both";
  int64_t sim_threads = 1;
  uint64_t epc_points = 16;
  uint64_t epc_min_mib = 8;
  uint64_t epc_max_mib = 128;
  uint64_t cost_points = 2;
  uint64_t l3_points = 1;
  bool memoize = true;
  bool use_capture = true;
  parser.AddString("workloads", &workloads_csv, "comma-separated workloads to record");
  parser.AddString("traces", &traces_csv,
                   "comma-separated .sgxtrace files to sweep instead of recording");
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class for recordings");
  parser.AddChoice("mode", &mode, {"sweep", "sequential", "verify"},
                   "sweep: the engine; sequential: one full replay per config on one "
                   "thread (the baseline); verify: both + bit-identity check");
  parser.AddChoice("modes", &modes, {"on", "off", "both"}, "enclave axis");
  parser.AddInt("sim_threads", &sim_threads, "simulated worker threads for recordings");
  parser.AddUint("epc_points", &epc_points, "EPC axis: number of sizes");
  parser.AddUint("epc_min_mib", &epc_min_mib, "EPC axis: smallest size (MiB)");
  parser.AddUint("epc_max_mib", &epc_max_mib, "EPC axis: largest size (MiB)");
  parser.AddUint("cost_points", &cost_points,
                 "cost axis: table i scales dram/mee_line/epc_fault by (100+50*i)%");
  parser.AddUint("l3_points", &l3_points,
                 "L3 axis: geometry i halves the L3 i times; points past the first "
                 "force the full-replay fallback");
  parser.AddBool("memoize", &memoize, "reuse results across identical configs");
  parser.AddBool("use_capture", &use_capture,
                 "allow structural-capture re-pricing (off = full replay only)");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  if (epc_points == 0 || cost_points == 0 || l3_points == 0) {
    std::fprintf(stderr, "each axis needs at least one point\n");
    return 2;
  }

  PrintReproHeader("sweep", MachineSpec{});

  // --- assemble the traces -------------------------------------------------
  using Clock = std::chrono::steady_clock;
  struct NamedTrace {
    std::string label;
    DecodedTrace decoded;
  };
  std::vector<NamedTrace> traces;
  if (!traces_csv.empty()) {
    for (const std::string& path : SplitCsv(traces_csv)) {
      MappedTrace mapped;
      std::string error;
      if (!mapped.Load(path, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      NamedTrace t;
      t.label = mapped.header().workload + "/" +
                PolicyName(static_cast<PolicyKind>(mapped.header().policy));
      t.decoded = DecodedTrace(mapped.header(), mapped.summary(), mapped.events_begin(),
                               mapped.events_end());
      traces.push_back(std::move(t));
    }
  } else {
    const std::vector<PolicyKind> policies = ResolvePolicies();
    std::vector<const WorkloadInfo*> workloads;
    for (const std::string& name : SplitCsv(workloads_csv)) {
      const WorkloadInfo* w = WorkloadRegistry::Instance().Find(name);
      if (w == nullptr) {
        std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
        return 1;
      }
      workloads.push_back(w);
    }
    WorkloadConfig cfg;
    cfg.size = ParseSizeClass(size);
    cfg.threads = static_cast<uint32_t>(sim_threads);
    const size_t np = policies.size();
    std::vector<RecordedRun> recs(workloads.size() * np);
    std::fprintf(stderr, "[sweep] recording %zu (workload, policy) trace(s)...\n",
                 recs.size());
    ParallelFor(recs.size(), ResolveBenchThreads(), [&](size_t i) {
      recs[i] = RecordWorkloadRun(*workloads[i / np], policies[i % np], MachineSpec{},
                                  PolicyOptions{}, cfg);
    });
    const auto decode_start = Clock::now();
    for (size_t i = 0; i < recs.size(); ++i) {
      NamedTrace t;
      t.label = workloads[i / np]->name + "/" + PolicyName(policies[i % np]);
      t.decoded = DecodedTrace(recs[i].trace);
      traces.push_back(std::move(t));
    }
    std::fprintf(stderr, "[sweep] decoded %zu trace(s) in %.3f s\n", traces.size(),
                 Seconds(decode_start, Clock::now()));
  }

  // --- build the config grid ----------------------------------------------
  GridAxes axes;
  for (uint64_t i = 0; i < epc_points; ++i) {
    const uint64_t mib =
        epc_points == 1
            ? epc_min_mib
            : epc_min_mib + (epc_max_mib - epc_min_mib) * i / (epc_points - 1);
    axes.epc_bytes.push_back(mib * kMiB);
  }
  for (uint64_t i = 0; i < cost_points; ++i) {
    CostModel costs;  // axis scales the memory-pressure prices off the defaults
    const uint64_t pct = 100 + 50 * i;
    costs.dram = static_cast<uint32_t>(costs.dram * pct / 100);
    costs.mee_line = static_cast<uint32_t>(costs.mee_line * pct / 100);
    costs.epc_fault = static_cast<uint32_t>(costs.epc_fault * pct / 100);
    axes.costs.push_back(costs);
  }
  if (modes == "on" || modes == "both") {
    axes.enclave.push_back(true);
  }
  if (modes == "off" || modes == "both") {
    axes.enclave.push_back(false);
  }
  for (uint64_t i = 0; i < l3_points; ++i) {
    axes.l3_shift.push_back(static_cast<uint32_t>(i));
  }

  std::vector<SweepRequest> grid;
  std::vector<size_t> trace_of;  // grid index -> trace index
  for (size_t t = 0; t < traces.size(); ++t) {
    for (const SimConfig& cfg : BuildConfigs(traces[t].decoded.header(), axes)) {
      SweepRequest req;
      req.trace = &traces[t].decoded;
      req.config = cfg;
      grid.push_back(req);
      trace_of.push_back(t);
    }
  }
  const size_t configs_per_trace = traces.empty() ? 0 : grid.size() / traces.size();
  std::fprintf(stderr, "[sweep] grid: %zu trace(s) x %zu config(s) = %zu request(s)\n",
               traces.size(), configs_per_trace, grid.size());

  // --- run -----------------------------------------------------------------
  const uint32_t threads = ResolveBenchThreads();
  std::vector<ReplayResult> swept;
  std::vector<ReplayResult> sequential;
  double sweep_seconds = 0;
  double sequential_seconds = 0;
  SweepStats stats;
  if (mode == "sweep" || mode == "verify") {
    SweepOptions opt;
    opt.threads = threads;
    opt.memoize = memoize;
    opt.use_capture = use_capture;
    SweepEngine engine(opt);
    const auto start = Clock::now();
    swept = engine.Run(grid);
    sweep_seconds = Seconds(start, Clock::now());
    stats = engine.stats();
    std::fprintf(stderr,
                 "[sweep] engine: %.3f s on %u thread(s) — %" PRIu64 " memo hits, %" PRIu64
                 " capture(s), %" PRIu64 " re-priced, %" PRIu64 " full replay(s)\n",
                 sweep_seconds, threads, stats.memo_hits, stats.captures_built,
                 stats.capture_replays, stats.full_replays);
  }
  if (mode == "sequential" || mode == "verify") {
    const auto start = Clock::now();
    sequential.resize(grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
      sequential[i] = ReplayDecoded(*grid[i].trace, grid[i].config);
    }
    sequential_seconds = Seconds(start, Clock::now());
    std::fprintf(stderr, "[sweep] sequential baseline: %.3f s on 1 thread\n",
                 sequential_seconds);
  }
  if (mode == "verify") {
    for (size_t i = 0; i < grid.size(); ++i) {
      if (!SameResult(swept[i], sequential[i])) {
        std::printf("VERIFY FAIL: request %zu (%s) diverges: sweep %" PRIu64
                    " cycles vs sequential %" PRIu64 "\n",
                    i, traces[trace_of[i]].label.c_str(), swept[i].cycles,
                    sequential[i].cycles);
        return 1;
      }
    }
  }
  const std::vector<ReplayResult>& results = swept.empty() ? sequential : swept;

  // --- deterministic digest ------------------------------------------------
  Table digest({"trace", "configs", "digest", "min cycles", "max cycles"});
  uint64_t total_digest = 14695981039346656037ull;
  for (size_t t = 0; t < traces.size(); ++t) {
    uint64_t h = 14695981039346656037ull;
    uint64_t min_cycles = UINT64_MAX, max_cycles = 0;
    size_t count = 0;
    for (size_t i = 0; i < grid.size(); ++i) {
      if (trace_of[i] != t) {
        continue;
      }
      h = FoldResult(h, results[i]);
      min_cycles = std::min(min_cycles, results[i].cycles);
      max_cycles = std::max(max_cycles, results[i].cycles);
      ++count;
    }
    total_digest ^= h + 0x9e3779b97f4a7c15ull * (t + 1);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, h);
    digest.AddRow({traces[t].label, std::to_string(count), hex,
                   std::to_string(min_cycles), std::to_string(max_cycles)});
  }
  digest.Print();
  if (mode == "verify") {
    std::printf("verify: %zu/%zu results bit-identical to sequential replay\n",
                grid.size(), grid.size());
  }
  if (sweep_seconds > 0 && sequential_seconds > 0) {
    std::fprintf(stderr, "[sweep] speedup vs sequential grid: %.1fx\n",
                 sequential_seconds / sweep_seconds);
  }

  // --- machine-readable artifact ------------------------------------------
  if (JsonFlag()) {
    std::FILE* f = std::fopen("BENCH_sweep.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[json] cannot write BENCH_sweep.json\n");
      return 1;
    }
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, total_digest);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"binary\": \"sweep\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", mode.c_str());
    std::fprintf(f, "  \"bench_threads\": %u,\n", threads);
    std::fprintf(f, "  \"traces\": %zu,\n", traces.size());
    std::fprintf(f, "  \"configs_per_trace\": %zu,\n", configs_per_trace);
    std::fprintf(f, "  \"grid_requests\": %zu,\n", grid.size());
    std::fprintf(f, "  \"sweep_seconds\": %.3f,\n", sweep_seconds);
    std::fprintf(f, "  \"sequential_seconds\": %.3f,\n", sequential_seconds);
    std::fprintf(f, "  \"speedup\": %.2f,\n",
                 sweep_seconds > 0 && sequential_seconds > 0
                     ? sequential_seconds / sweep_seconds
                     : 0.0);
    std::fprintf(f,
                 "  \"stats\": {\"requests\": %" PRIu64 ", \"memo_hits\": %" PRIu64
                 ", \"captures_built\": %" PRIu64 ", \"capture_replays\": %" PRIu64
                 ", \"full_replays\": %" PRIu64 "},\n",
                 stats.requests, stats.memo_hits, stats.captures_built,
                 stats.capture_replays, stats.full_replays);
    std::fprintf(f, "  \"digest\": \"%s\"\n}\n", hex);
    std::fclose(f);
    std::fprintf(stderr, "[json] wrote BENCH_sweep.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) { return sgxb::Main(argc, argv); }
