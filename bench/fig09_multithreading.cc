// Figure 9 reproduction: ASan vs SGXBounds overheads over native SGX with 1
// and 4 threads (8-thread numbers are Fig. 7).
//
// Paper expectation (SS6.4): ASan's average overhead grows from ~35% (1T) to
// ~49% (4T) - shared-LLC pollution by shadow accesses - while SGXBounds stays
// flat (~17% -> ~16%); matrixmul is the poster child (ASan 6.7x more LLC
// misses at 4 threads).

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string size = "S";
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  PrintReproHeader("fig09_multithreading", MachineSpec{});
  std::printf("Figure 9: overheads over native SGX at 1 and 4 threads\n");
  std::printf("paper expectation: ASan ~1.35x@1T -> ~1.49x@4T; SGXBounds flat ~1.17x\n\n");

  Table table({"benchmark", "ASan 1T", "ASan 4T", "SGXBnd 1T", "SGXBnd 4T"});
  std::vector<double> asan1;
  std::vector<double> asan4;
  std::vector<double> sgxb1;
  std::vector<double> sgxb4;

  std::vector<const WorkloadInfo*> workloads;
  for (const std::string suite : {"phoenix", "parsec"}) {
    for (const WorkloadInfo* w : WorkloadRegistry::Instance().BySuite(suite)) {
      workloads.push_back(w);
    }
  }

  // Six independent runs per workload (3 policies x {1,4} threads), fanned
  // out across host threads; rows are assembled in workload order below.
  WorkloadConfig cfg1;
  cfg1.size = ParseSizeClass(size);
  cfg1.threads = 1;
  WorkloadConfig cfg4 = cfg1;
  cfg4.threads = 4;
  const PolicyKind kinds[] = {PolicyKind::kNative, PolicyKind::kAsan,
                              PolicyKind::kSgxBounds};
  std::vector<BenchJob> jobs;
  for (const WorkloadInfo* w : workloads) {
    for (PolicyKind kind : kinds) {
      for (const WorkloadConfig* cfg : {&cfg1, &cfg4}) {
        jobs.push_back({w->name + "/" + PolicyName(kind) + "/" +
                            std::to_string(cfg->threads) + "T",
                        [w, kind, cfg] {
                          return w->run(kind, MachineSpec{}, PolicyOptions{}, *cfg);
                        }});
      }
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig09");

  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    const RunResult* r = &results[wi * 6];
    const RunResult &n1 = r[0], &n4 = r[1], &a1 = r[2], &a4 = r[3], &s1 = r[4], &s4 = r[5];
    table.AddRow({workloads[wi]->name, PerfCell(a1, n1), PerfCell(a4, n4), PerfCell(s1, n1),
                  PerfCell(s4, n4)});
    asan1.push_back(a1.CyclesRatioOver(n1));
    asan4.push_back(a4.CyclesRatioOver(n4));
    sgxb1.push_back(s1.CyclesRatioOver(n1));
    sgxb4.push_back(s4.CyclesRatioOver(n4));
  }
  table.AddSeparator();
  table.AddRow({"gmean", FormatRatio(GeoMean(asan1)), FormatRatio(GeoMean(asan4)),
                FormatRatio(GeoMean(sgxb1)), FormatRatio(GeoMean(sgxb4))});
  table.Print();
  return 0;
}
