// Figure 11 reproduction: SPEC CPU2006 inside the enclave - performance and
// memory overheads over native SGX.
//
// Paper expectation (SS6.7): gmean perf SGXBounds ~1.41x, ASan ~1.76x, MPX
// ~1.52x; memory SGXBounds ~1.004x, ASan ~10x, MPX ~2.1x. MPX fails with
// OOM on astar, mcf, and xalanc; ASan's worst case is mcf (2.4x, EPC
// thrashing) where SGXBounds is ~1%.

#include "bench/bench_util.h"

#include "src/trace/record.h"
#include "src/trace/sweep.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string size = "L";
  std::string mode = "live";
  parser.AddChoice("size", &size, SizeClassChoices(), "input size class");
  parser.AddChoice("mode", &mode, {"live", "replay", "sweep"},
                   "live: run the in-enclave suite; replay: record each "
                   "(benchmark, policy) once and derive BOTH the in-enclave and "
                   "out-of-enclave tables from that single recording set; sweep: "
                   "same recordings, but both tables come from one SweepEngine "
                   "batch (decode-once + capture re-pricing)");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  MachineSpec spec;  // enclave mode on
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = 1;  // SPEC is single-threaded

  PrintReproHeader("fig11_spec_sgx", spec);
  std::printf("Figure 11: SPEC CPU2006 inside the enclave\n");
  std::printf("paper expectation: gmean SGXBounds ~1.41x / ASan ~1.76x / MPX ~1.52x; "
              "MPX OOM on astar, mcf, xalanc\n");

  const std::vector<const WorkloadInfo*> workloads =
      WorkloadRegistry::Instance().BySuite("spec");

  if (mode == "sweep") {
    // Record once per (benchmark, policy), then answer the whole
    // {enclave on, enclave off} x recordings grid in ONE SweepEngine batch:
    // each trace decodes once and one enclave-ON capture per trace re-prices
    // both modes, so neither table costs a second full replay. The engine's
    // results are bit-identical to the live/replay paths (tests/trace_test.cc),
    // so all three modes print the same tables.
    const size_t np = policies.size();
    std::vector<RecordedRun> recs(workloads.size() * np);
    ParallelFor(recs.size(), ResolveBenchThreads(), [&](size_t i) {
      const WorkloadInfo* w = workloads[i / np];
      const PolicyKind kind = policies[i % np];
      std::fprintf(stderr, "[fig11] recording %s/%s...\n", w->name.c_str(),
                   PolicyName(kind));
      recs[i] = RecordWorkloadRun(*w, kind, spec, PolicyOptions{}, cfg);
    });
    std::vector<DecodedTrace> decoded;
    decoded.reserve(recs.size());
    for (const RecordedRun& rec : recs) {
      decoded.emplace_back(rec.trace);
    }
    std::vector<SweepRequest> grid;
    for (const DecodedTrace& d : decoded) {
      SweepRequest on;
      on.trace = &d;
      on.config = SimConfigFromHeader(d.header());
      SweepRequest off = on;
      off.config.enclave_mode = false;
      grid.push_back(on);
      grid.push_back(off);
    }
    SweepOptions opt;
    opt.threads = ResolveBenchThreads();
    SweepEngine engine(opt);
    const std::vector<ReplayResult> swept = engine.Run(grid);
    std::vector<SuiteRow> enclave_rows;
    std::vector<SuiteRow> native_rows;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
      std::vector<RunResult> enc(np);
      std::vector<RunResult> nat(np);
      for (size_t pi = 0; pi < np; ++pi) {
        const size_t t = wi * np + pi;
        enc[pi] = ToRunResult(swept[2 * t], decoded[t]);
        nat[pi] = ToRunResult(swept[2 * t + 1], decoded[t]);
      }
      enclave_rows.push_back(MakeSuiteRow(workloads[wi]->name, enc.data(), policies));
      native_rows.push_back(MakeSuiteRow(workloads[wi]->name, nat.data(), policies));
    }
    const SweepStats& st = engine.stats();
    std::fprintf(stderr,
                 "[fig11] sweep: %llu requests, %llu captures, %llu re-priced, "
                 "%llu full replays\n",
                 static_cast<unsigned long long>(st.requests),
                 static_cast<unsigned long long>(st.captures_built),
                 static_cast<unsigned long long>(st.capture_replays),
                 static_cast<unsigned long long>(st.full_replays));
    PrintOverheadTables("Fig.11 SPEC in-enclave (" + size + ", recorded)", enclave_rows);
    PrintOverheadTables(
        "Fig.12-style SPEC outside enclave (" + size + ", replayed from the same recordings)",
        native_rows);
    return 0;
  }

  if (mode == "replay") {
    // The access stream does not depend on enclave mode (it only changes
    // charging), so one in-enclave recording re-simulates the out-of-enclave
    // machine exactly: the second table costs a replay, not a re-execution.
    std::vector<SuiteRow> enclave_rows;
    std::vector<SuiteRow> native_rows;
    for (const WorkloadInfo* w : workloads) {
      std::vector<RunResult> enc(policies.size());
      std::vector<RunResult> nat(policies.size());
      ParallelFor(policies.size(), ResolveBenchThreads(), [&](size_t i) {
        const PolicyKind kind = policies[i];
        std::fprintf(stderr, "[fig11] recording %s/%s...\n", w->name.c_str(),
                     PolicyName(kind));
        const RecordedRun rec =
            RecordWorkloadRun(*w, kind, spec, PolicyOptions{}, cfg);
        enc[i] = rec.live;
        SimConfig native_cfg = SimConfigFromHeader(rec.trace.header);
        native_cfg.enclave_mode = false;
        nat[i] = ToRunResult(ReplayTrace(rec.trace, native_cfg), rec.trace);
      });
      enclave_rows.push_back(MakeSuiteRow(w->name, enc.data(), policies));
      native_rows.push_back(MakeSuiteRow(w->name, nat.data(), policies));
    }
    PrintOverheadTables("Fig.11 SPEC in-enclave (" + size + ", recorded)", enclave_rows);
    PrintOverheadTables(
        "Fig.12-style SPEC outside enclave (" + size + ", replayed from the same recordings)",
        native_rows);
    return 0;
  }

  const std::vector<SuiteRow> rows = RunSuiteRows(workloads, spec, cfg, "fig11", policies);
  PrintOverheadTables("Fig.11 SPEC in-enclave (" + size + ")", rows);
  return 0;
}
