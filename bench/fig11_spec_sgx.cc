// Figure 11 reproduction: SPEC CPU2006 inside the enclave - performance and
// memory overheads over native SGX.
//
// Paper expectation (SS6.7): gmean perf SGXBounds ~1.41x, ASan ~1.76x, MPX
// ~1.52x; memory SGXBounds ~1.004x, ASan ~10x, MPX ~2.1x. MPX fails with
// OOM on astar, mcf, and xalanc; ASan's worst case is mcf (2.4x, EPC
// thrashing) where SGXBounds is ~1%.

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  std::string size = "L";
  parser.AddString("size", &size, "input size class");
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  std::printf("Figure 11: SPEC CPU2006 inside the enclave\n");
  std::printf("paper expectation: gmean SGXBounds ~1.41x / ASan ~1.76x / MPX ~1.52x; "
              "MPX OOM on astar, mcf, xalanc\n");

  MachineSpec spec;  // enclave mode on
  WorkloadConfig cfg;
  cfg.size = ParseSizeClass(size);
  cfg.threads = 1;  // SPEC is single-threaded

  const std::vector<SuiteRow> rows =
      RunSuiteRows(WorkloadRegistry::Instance().BySuite("spec"), spec, cfg, "fig11");
  PrintOverheadTables("Fig.11 SPEC in-enclave (" + size + ")", rows);
  return 0;
}
