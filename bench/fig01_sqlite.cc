// Figure 1 reproduction: SQLite-analogue speedtest with increasing working
// set, inside the enclave. Performance (top panel) and peak virtual memory
// (bottom panel) for native SGX / MPX / ASan / SGXBounds.
//
// Paper expectation (SS1, SS2.3):
//   * Intel MPX crashes with insufficient memory once its 4 MiB bounds
//     tables, one per pointer-bearing MiB of heap, exhaust the enclave;
//   * ASan runs up to 3.1x slower than native SGX at the larger working
//     sets and holds ~3x more virtual memory (512 MB shadow + redzones);
//   * SGXBounds stays within ~35% slowdown and ~zero extra memory.

#include "bench/bench_util.h"
#include "src/apps/kvstore.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  uint64_t max_items = 400 * 1000;
  parser.AddUint("max_items", &max_items, "largest working-set size in rows");
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);

  PrintReproHeader("fig01_sqlite", MachineSpec{});
  std::printf("Figure 1: SQLite-analogue speedtest vs working-set size (in-enclave)\n");
  std::printf("paper expectation: MPX crashes early; ASan up to ~3.1x slower and ~3.1x "
              "memory; SGXBounds <=1.35x and ~1.0x memory\n\n");

  Table table({"rows", "native MB", "MPX perf", "ASan perf", "SGXBnd perf", "MPX mem",
               "ASan mem", "SGXBnd mem"});

  std::vector<uint64_t> sizes;
  for (uint64_t items = 25000; items <= max_items; items *= 2) {
    sizes.push_back(items);
  }
  std::vector<BenchJob> jobs;
  for (uint64_t items : sizes) {
    for (PolicyKind kind : kAllPolicies) {
      jobs.push_back({std::to_string(items) + "/" + PolicyName(kind), [items, kind] {
                        SpeedtestConfig cfg;
                        cfg.items = items;
                        MachineSpec spec;
                        // SQLite under SCONE was built with a fixed-size enclave
                        // heap; the address space left over is what MPX's 4 MiB
                        // bounds tables compete for.
                        spec.heap_reserve = 3328ULL * kMiB;  // ASan shadow + MPX tables
                        return RunPolicyKind(kind, spec, PolicyOptions{},
                                             [&](auto& env) { RunSpeedtest(env, cfg); });
                      }});
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig01");
  for (size_t si = 0; si < sizes.size(); ++si) {
    const RunResult* r = &results[si * 4];
    const RunResult &native = r[0], &mpx = r[1], &asan = r[2], &sgxb = r[3];
    table.AddRow({std::to_string(sizes[si]), FormatBytes(native.peak_vm_bytes),
                  PerfCell(mpx, native), PerfCell(asan, native), PerfCell(sgxb, native),
                  MemCell(mpx, native), MemCell(asan, native), MemCell(sgxb, native)});
  }
  table.Print();
  return 0;
}
