// Figure 1 reproduction: SQLite-analogue speedtest with increasing working
// set, inside the enclave. Performance (top panel) and peak virtual memory
// (bottom panel) for native SGX / MPX / ASan / SGXBounds.
//
// Paper expectation (SS1, SS2.3):
//   * Intel MPX crashes with insufficient memory once its 4 MiB bounds
//     tables, one per pointer-bearing MiB of heap, exhaust the enclave;
//   * ASan runs up to 3.1x slower than native SGX at the larger working
//     sets and holds ~3x more virtual memory (512 MB shadow + redzones);
//   * SGXBounds stays within ~35% slowdown and ~zero extra memory.

#include "bench/bench_util.h"
#include "src/apps/kvstore.h"

int main(int argc, char** argv) {
  using namespace sgxb;
  FlagParser parser;
  uint64_t max_items = 400 * 1000;
  parser.AddUint("max_items", &max_items, "largest working-set size in rows");
  AddPoliciesFlag(parser);
  AddBenchDriverFlags(parser);
  parser.Parse(argc, argv);
  const std::vector<PolicyKind> policies = ResolvePolicies();

  PrintReproHeader("fig01_sqlite", MachineSpec{});
  std::printf("Figure 1: SQLite-analogue speedtest vs working-set size (in-enclave)\n");
  std::printf("paper expectation: MPX crashes early; ASan up to ~3.1x slower and ~3.1x "
              "memory; SGXBounds <=1.35x and ~1.0x memory\n\n");

  // Columns from the registry: one perf + one mem column per selected
  // non-baseline scheme.
  const size_t base = BaselineIndex(policies);
  std::vector<size_t> cols;
  for (size_t i = 0; i < policies.size(); ++i) {
    if (i != base) {
      cols.push_back(i);
    }
  }
  std::vector<std::string> head{"rows", std::string(SchemeOf(policies[base]).id) + " MB"};
  for (const size_t c : cols) {
    head.push_back(std::string(SchemeOf(policies[c]).name) + " perf");
  }
  for (const size_t c : cols) {
    head.push_back(std::string(SchemeOf(policies[c]).name) + " mem");
  }
  Table table(head);

  std::vector<uint64_t> sizes;
  for (uint64_t items = 25000; items <= max_items; items *= 2) {
    sizes.push_back(items);
  }
  std::vector<BenchJob> jobs;
  for (uint64_t items : sizes) {
    for (PolicyKind kind : policies) {
      jobs.push_back({std::to_string(items) + "/" + PolicyName(kind), [items, kind] {
                        SpeedtestConfig cfg;
                        cfg.items = items;
                        MachineSpec spec;
                        // SQLite under SCONE was built with a fixed-size enclave
                        // heap; the address space left over is what MPX's 4 MiB
                        // bounds tables compete for.
                        spec.heap_reserve = 3328ULL * kMiB;  // ASan shadow + MPX tables
                        return RunPolicyKind(kind, spec, PolicyOptions{},
                                             [&](auto& env) { RunSpeedtest(env, cfg); });
                      }});
    }
  }
  const std::vector<RunResult> results = RunBenchJobs(jobs, "fig01");
  for (size_t si = 0; si < sizes.size(); ++si) {
    const RunResult* r = &results[si * policies.size()];
    std::vector<std::string> cells{std::to_string(sizes[si]),
                                   FormatBytes(r[base].peak_vm_bytes)};
    for (const size_t c : cols) {
      cells.push_back(PerfCell(r[c], r[base]));
    }
    for (const size_t c : cols) {
      cells.push_back(MemCell(r[c], r[base]));
    }
    table.AddRow(cells);
  }
  table.Print();
  return 0;
}
