// fig16_resilience: availability under shard failures, per recovery policy.
//
// Sweeps fault rate x recovery policy over one farm configuration
// (src/farm/resilience.h): seeded ShardFaultPlan::Sampled campaigns of
// crash/hang/epc_storm/poison events against an open-loop offered load, under
// failstop / restart / failover / failover+hedge. Per sweep point it reports
// the availability/SLO picture the paper's per-enclave story scales up to:
// goodput vs offered load (and vs the fault-free baseline), request outcome
// counts (completed / app-failed / timed out), client mechanics (retries,
// hedges, hedge wins), supervisor mechanics (detections, convictions,
// restarts, failovers), per-shard uptime, and tail latency split between
// healthy and degraded dispatch windows (timeouts capped into the quantile
// via LatencyHistogram::CappedQuantile, so a hung shard cannot *improve* the
// reported tail).
//
// Everything simulated is deterministic: --bench_threads changes only host
// wall-clock, never a result byte. --selfcheck re-runs a small faulted fleet
// under every recovery mode at 1/4/16 host threads and fails on any digest
// mismatch (the CI gate). --json writes BENCH_resilience.json.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/farm/farm.h"

namespace sgxb {
namespace {

struct SweepPoint {
  uint32_t fault_events;
  RecoveryMode mode;
  FarmResult result;
};

double CyclesToUs(double cycles, double ghz) { return cycles / (ghz * 1e3); }

std::vector<uint64_t> ParseCsvU64OrZero(const std::string& csv, const char* flag) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "--%s: '%s' is not an integer\n", flag, tok.c_str());
        std::exit(2);
      }
      out.push_back(v);
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--%s: empty list\n", flag);
    std::exit(2);
  }
  return out;
}

std::vector<RecoveryMode> ResolveRecoveries(const std::string& csv) {
  std::vector<RecoveryMode> out;
  if (csv == "all") {
    for (uint32_t i = 0; i < kRecoveryModeCount; ++i) {
      out.push_back(static_cast<RecoveryMode>(i));
    }
    return out;
  }
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) {
      RecoveryMode m;
      if (!ParseRecoveryMode(tok, &m)) {
        std::string valid;
        for (const std::string& name : RecoveryModeChoices()) {
          valid += valid.empty() ? name : "|" + name;
        }
        std::fprintf(stderr, "--recoveries: unknown mode '%s' (valid: %s|all)\n",
                     tok.c_str(), valid.c_str());
        std::exit(2);
      }
      out.push_back(m);
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--recoveries: empty list\n");
    std::exit(2);
  }
  return out;
}

double MinUptime(const ResilienceReport& rr) {
  double m = 1.0;
  for (const ShardAvailability& av : rr.shards) {
    m = std::min(m, av.uptime);
  }
  return m;
}

void WriteResilienceJson(const std::vector<SweepPoint>& points, const FarmConfig& proto,
                         uint32_t mid_rate,
                         const std::vector<std::pair<std::string, double>>& retention) {
  std::FILE* f = std::fopen("BENCH_resilience.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot write BENCH_resilience.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"fig16_resilience\",\n");
  std::fprintf(f, "  \"app\": \"%s\",\n", FarmAppName(proto.app));
  std::fprintf(f, "  \"policy\": \"%s\",\n", PolicyName(proto.policy));
  std::fprintf(f, "  \"shards\": %u,\n", proto.shards);
  std::fprintf(f, "  \"requests\": %" PRIu64 ",\n", proto.load.requests);
  std::fprintf(f, "  \"offered_rps\": %.0f,\n", proto.offered_rps);
  std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", proto.load.seed);
  std::fprintf(f, "  \"bench_threads\": %u,\n", ResolveBenchThreads());
  // Headline: goodput retention at the mid fault rate, per recovery mode —
  // the "failover+hedge sustains, fail-stop collapses" comparison.
  std::fprintf(f, "  \"mid_fault_rate\": %u,\n", mid_rate);
  std::fprintf(f, "  \"goodput_retention_at_mid\": {");
  for (size_t i = 0; i < retention.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.4f", i == 0 ? "" : ", ", retention[i].first.c_str(),
                 retention[i].second);
  }
  std::fprintf(f, "},\n  \"rows\": [");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    const FarmResult& r = p.result;
    const ResilienceReport& rr = r.resilience;
    std::fprintf(f,
                 "%s\n    {\"fault_events\": %u, \"recovery\": \"%s\", "
                 "\"completed\": %" PRIu64 ", \"failed_app\": %" PRIu64
                 ", \"failed_timeout\": %" PRIu64 ", \"attempts\": %" PRIu64
                 ", \"retries\": %" PRIu64 ", \"hedges\": %" PRIu64
                 ", \"hedge_wins\": %" PRIu64 ", \"timed_out_attempts\": %" PRIu64
                 ", \"detections\": %" PRIu64 ", \"convictions\": %" PRIu64
                 ", \"restarts\": %" PRIu64 ", \"failovers\": %" PRIu64
                 ", \"goodput_rps\": %.1f, \"min_uptime\": %.4f"
                 ", \"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f"
                 ", \"healthy_p99_us\": %.2f, \"degraded_p99_us\": %.2f"
                 ", \"degraded_p999_us\": %.2f, \"timeouts\": %" PRIu64
                 ", \"uptime\": [",
                 i == 0 ? "" : ",", p.fault_events, RecoveryModeName(p.mode),
                 rr.completed, rr.failed_app, rr.failed_timeout, rr.attempts,
                 rr.retries, rr.hedges, rr.hedge_wins, rr.timed_out_attempts,
                 rr.detections, rr.convictions, rr.restarts, rr.failovers,
                 rr.goodput_rps, MinUptime(rr),
                 CyclesToUs(r.latency.CappedQuantile(0.50), proto.ghz),
                 CyclesToUs(r.latency.CappedQuantile(0.99), proto.ghz),
                 CyclesToUs(r.latency.CappedQuantile(0.999), proto.ghz),
                 CyclesToUs(rr.healthy.CappedQuantile(0.99), proto.ghz),
                 CyclesToUs(rr.degraded.CappedQuantile(0.99), proto.ghz),
                 CyclesToUs(rr.degraded.CappedQuantile(0.999), proto.ghz),
                 r.latency.timeout_count());
    for (size_t s = 0; s < rr.shards.size(); ++s) {
      std::fprintf(f, "%s%.4f", s == 0 ? "" : ", ", rr.shards[s].uptime);
    }
    std::fprintf(f, "], \"digest\": \"%016" PRIx64 "\"}", r.digest);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[json] wrote BENCH_resilience.json (%zu rows)\n", points.size());
}

int SelfCheck(FarmConfig proto) {
  // Small faulted fleet, every recovery mode, digest pinned across host
  // thread counts.
  proto.app = FarmApp::kKvStore;
  proto.policy = PolicyKind::kSgxBounds;
  proto.shards = 4;
  proto.load.requests = 4000;
  proto.open_loop = true;
  proto.offered_rps = 600000;
  proto.machine.recovery.enabled = true;
  proto.resilience.enabled = true;
  proto.resilience.shard_faults =
      ShardFaultPlan::Sampled(proto.load.seed, proto.shards, proto.load.requests,
                              /*events=*/3);
  int failures = 0;
  for (uint32_t m = 0; m < kRecoveryModeCount; ++m) {
    proto.resilience.mode = static_cast<RecoveryMode>(m);
    uint64_t reference = 0;
    for (uint32_t threads : {1u, 4u, 16u}) {
      proto.host_threads = threads;
      const FarmResult r = RunFarm(proto);
      if (threads == 1) {
        reference = r.digest;
      }
      const bool ok = r.digest == reference;
      std::printf("[selfcheck] recovery=%s threads=%u digest=%016" PRIx64 " %s\n",
                  RecoveryModeName(proto.resilience.mode), threads, r.digest,
                  ok ? "ok" : "MISMATCH");
      failures += ok ? 0 : 1;
    }
  }
  std::printf("[selfcheck] %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  FlagParser parser;
  AddBenchDriverFlags(parser);
  std::string app = "kvstore";
  std::string policy = "sgxbounds";
  std::string rates_csv = "0,2,4,8";
  std::string recoveries_csv = "all";
  std::string transitions = "sync";
  uint64_t shards = 8;
  uint64_t requests = 20000;
  uint64_t keyspace = 4096;
  uint64_t seed = 42;
  uint64_t vnodes = 64;
  double rps = 1200000;
  bool selfcheck = false;
  parser.AddChoice("app", &app, FarmAppChoices(), "farm app to serve");
  parser.AddString("policy", &policy, "memory-safety scheme for every shard");
  parser.AddString("fault_rates", &rates_csv,
                   "comma-separated fault-event counts to sweep (0 = fault-free "
                   "baseline)");
  parser.AddString("recoveries", &recoveries_csv,
                   "comma-separated recovery policies "
                   "(failstop|restart|failover|failover+hedge|all)");
  parser.AddChoice("transitions", &transitions, {"off", "sync", "switchless"},
                   "enclave transition cost axis");
  parser.AddUint("shards", &shards, "shard count");
  parser.AddUint("requests", &requests, "requests per run");
  parser.AddUint("keyspace", &keyspace, "distinct keys");
  parser.AddUint("seed", &seed, "load + fault campaign seed");
  parser.AddUint("vnodes", &vnodes, "ring points per shard");
  parser.AddDouble("rps", &rps, "open-loop offered requests/second");
  parser.AddBool("selfcheck", &selfcheck,
                 "run the faulted-fleet digest check across host thread counts and exit");
  parser.Parse(argc, argv);

  FarmConfig proto;
  if (!ParseFarmApp(app, &proto.app)) {
    std::fprintf(stderr, "--app: unknown app '%s'\n", app.c_str());
    return 2;
  }
  proto.policy = ParsePolicyKind(policy);  // exits(2) on unknown id
  proto.shards = static_cast<uint32_t>(shards);
  proto.vnodes = static_cast<uint32_t>(vnodes);
  proto.load.requests = requests;
  proto.load.keyspace = keyspace;
  proto.load.seed = seed;
  proto.open_loop = true;
  proto.offered_rps = rps;
  proto.host_threads = ResolveBenchThreads();
  proto.machine.seed = seed;
  if (transitions == "sync") {
    proto.machine.costs.EnableTransitions(/*use_switchless=*/false);
  } else if (transitions == "switchless") {
    proto.machine.costs.EnableTransitions(/*use_switchless=*/true);
  }
  PrintReproHeader("resilience", proto.machine);

  if (selfcheck) {
    return SelfCheck(proto);
  }

  proto.machine.recovery.enabled = true;
  const std::vector<uint64_t> rates = ParseCsvU64OrZero(rates_csv, "fault_rates");
  const std::vector<RecoveryMode> modes = ResolveRecoveries(recoveries_csv);

  std::vector<SweepPoint> points;
  Table table({"faults", "recovery", "completed", "failed", "t/o", "retries",
               "hedge w/l", "detect", "f/o", "rst", "min up", "goodput kop/s",
               "good%", "p99 us", "degr p99", "p999 us"});
  // Fault-free goodput per mode, the retention denominator.
  std::vector<double> base_goodput(kRecoveryModeCount, 0.0);
  for (const uint64_t rate : rates) {
    if (rate != rates.front()) {
      table.AddSeparator();
    }
    for (const RecoveryMode mode : modes) {
      FarmConfig cfg = proto;
      cfg.resilience.enabled = true;
      cfg.resilience.mode = mode;
      cfg.resilience.shard_faults = ShardFaultPlan::Sampled(
          seed, cfg.shards, cfg.load.requests, static_cast<uint32_t>(rate));
      std::fprintf(stderr, "[resilience] faults=%" PRIu64 " recovery=%s...\n", rate,
                   RecoveryModeName(mode));
      const FarmResult r = RunFarm(cfg);
      const ResilienceReport& rr = r.resilience;
      if (rate == 0) {
        base_goodput[static_cast<size_t>(mode)] = rr.goodput_rps;
      }
      const double base = base_goodput[static_cast<size_t>(mode)];
      const double retention = base > 0 ? 100.0 * rr.goodput_rps / base : 0.0;
      char hedge[32];
      std::snprintf(hedge, sizeof hedge, "%" PRIu64 "/%" PRIu64, rr.hedge_wins,
                    rr.hedges);
      table.AddRow({std::to_string(rate), RecoveryModeName(mode),
                    std::to_string(rr.completed),
                    std::to_string(rr.failed_app + rr.failed_timeout),
                    std::to_string(rr.timed_out_attempts), std::to_string(rr.retries),
                    hedge, std::to_string(rr.detections + rr.convictions),
                    std::to_string(rr.failovers), std::to_string(rr.restarts),
                    FormatDouble(100.0 * MinUptime(rr), 1),
                    FormatDouble(rr.goodput_rps / 1000.0, 1), FormatDouble(retention, 1),
                    FormatDouble(CyclesToUs(r.latency.CappedQuantile(0.99), cfg.ghz), 1),
                    FormatDouble(CyclesToUs(rr.degraded.CappedQuantile(0.99), cfg.ghz), 1),
                    FormatDouble(CyclesToUs(r.latency.CappedQuantile(0.999), cfg.ghz), 1)});
      SweepPoint p;
      p.fault_events = static_cast<uint32_t>(rate);
      p.mode = mode;
      p.result = r;
      points.push_back(std::move(p));
    }
  }
  std::printf("\n== %s / %s / %u shards @ %.0f krps offered : availability vs "
              "fault rate ==\n",
              FarmAppName(proto.app), PolicyName(proto.policy), proto.shards,
              rps / 1000.0);
  table.Print();

  // Headline comparison at the mid fault rate.
  const uint32_t mid_rate = static_cast<uint32_t>(rates[rates.size() / 2]);
  std::vector<std::pair<std::string, double>> retention;
  for (const SweepPoint& p : points) {
    if (p.fault_events != mid_rate) {
      continue;
    }
    const double base = base_goodput[static_cast<size_t>(p.mode)];
    retention.emplace_back(RecoveryModeName(p.mode),
                           base > 0 ? p.result.resilience.goodput_rps / base : 0.0);
  }
  std::printf("\n[headline] goodput retention at %u fault events:", mid_rate);
  for (const auto& [name, frac] : retention) {
    std::printf(" %s=%.1f%%", name.c_str(), 100.0 * frac);
  }
  std::printf("\n");

  if (JsonFlag()) {
    WriteResilienceJson(points, proto, mid_rate, retention);
  }
  return 0;
}

}  // namespace
}  // namespace sgxb

int main(int argc, char** argv) { return sgxb::Main(argc, argv); }
