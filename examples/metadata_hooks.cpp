// Metadata management API demo (paper SS4.3, Table 2): extending SGXBounds'
// per-object footer with custom metadata and lifecycle hooks.
//
// Implements both examples the paper sketches:
//   1. probabilistic double-free detection via a magic-number slot,
//   2. access-origin accounting (which objects are hot) via on_access.
//
// Build & run:  ./build/examples/metadata_hooks

#include <cstdio>
#include <map>

#include "src/sgxbounds/bounds_runtime.h"

using namespace sgxb;

int main() {
  EnclaveConfig config;
  Enclave enclave(config);
  Cpu& cpu = enclave.main_cpu();
  Heap heap(&enclave, 64 * kMiB);

  // One extra 4-byte metadata slot after the lower bound.
  MetadataRegistry registry(/*extra_slots=*/1);

  constexpr uint32_t kMagicLive = 0xa110c8ed;
  constexpr uint32_t kMagicFreed = 0xdeadf7ee;
  int double_frees_caught = 0;
  std::map<uint32_t, uint64_t> access_counts;  // footer addr -> accesses

  MetadataHooks hooks;
  hooks.on_create = [&](Cpu& c, uint32_t base, uint32_t size, ObjKind) {
    // Slot 0 = liveness magic.
    enclave.Store<uint32_t>(c, registry.SlotAddr(base + size, 0), kMagicLive,
                            AccessClass::kMetadataStore);
  };
  hooks.on_access = [&](Cpu&, uint32_t, uint32_t, uint32_t metadata, AccessType) {
    ++access_counts[metadata];
  };
  hooks.on_delete = [&](Cpu& c, uint32_t metadata) {
    const uint32_t magic =
        enclave.Load<uint32_t>(c, registry.SlotAddr(metadata, 0), AccessClass::kMetadataLoad);
    if (magic == kMagicFreed) {
      ++double_frees_caught;
      std::printf("  double free detected on object with footer at 0x%08x!\n", metadata);
    }
    enclave.Store<uint32_t>(c, registry.SlotAddr(metadata, 0), kMagicFreed,
                            AccessClass::kMetadataStore);
  };
  registry.Register(std::move(hooks));

  SgxBoundsRuntime sgxbounds(&enclave, &heap, OobPolicy::kFailFast, &registry);
  std::printf("footer bytes per object: %u (4 LB + 4 magic)\n\n", sgxbounds.FooterBytes());

  // A hot object and a cold object.
  TaggedPtr hot = sgxbounds.Malloc(cpu, 64);
  TaggedPtr cold = sgxbounds.Malloc(cpu, 64);
  for (int i = 0; i < 1000; ++i) {
    sgxbounds.Store<uint32_t>(cpu, hot, i);
  }
  sgxbounds.Load<uint32_t>(cpu, cold);

  std::printf("access profile (footer -> count):\n");
  for (const auto& [footer, count] : access_counts) {
    std::printf("  0x%08x : %llu %s\n", footer, (unsigned long long)count,
                footer == ExtractUb(hot) ? "(the hot object)" : "");
  }

  // The double free. The first Free is legitimate; replaying the delete hook
  // on the stale footer (what a second free() of the same pointer does before
  // the allocator can object) trips the magic check.
  std::printf("\nfreeing object, then double-freeing it:\n");
  const uint32_t footer = ExtractUb(hot);
  sgxbounds.Free(cpu, hot);
  registry.FireDelete(cpu, footer);
  std::printf("\ndouble frees caught: %d\n", double_frees_caught);
  return double_frees_caught == 1 ? 0 : 1;
}
