// Quickstart: protecting a buggy program with SGXBounds.
//
// This walks the core public API end to end:
//   1. build a simulated SGX enclave,
//   2. create the SGXBounds runtime on its heap,
//   3. allocate tagged objects and access them with bounds checks,
//   4. watch an off-by-one get caught that native execution misses,
//   5. read the cycle/memory accounting the benchmarks are built on.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/sgxbounds/bounds_runtime.h"

using namespace sgxb;

int main() {
  // 1. A simulated enclave: 32-bit address space, 94 MiB EPC, MEE costs on.
  EnclaveConfig config;
  Enclave enclave(config);
  Cpu& cpu = enclave.main_cpu();
  Heap heap(&enclave, 64 * kMiB);

  // 2. The SGXBounds runtime (fail-fast out-of-bounds policy).
  SgxBoundsRuntime sgxbounds(&enclave, &heap);

  // 3. Tagged allocation: the pointer's high 32 bits carry the upper bound,
  //    and 4 footer bytes after the object hold the lower bound.
  const uint32_t n = 16;
  TaggedPtr array = sgxbounds.Malloc(cpu, n * sizeof(uint32_t));
  std::printf("malloc(%u) -> p=0x%08x UB=0x%08x (footer adds only 4 bytes)\n",
              n * 4, ExtractPtr(array), ExtractUb(array));

  for (uint32_t i = 0; i < n; ++i) {
    sgxbounds.Store<uint32_t>(cpu, sgxbounds.PtrAdd(cpu, array, i * 4), i * i);
  }
  std::printf("a[5] = %u\n", sgxbounds.Load<uint32_t>(cpu, TaggedAdd(array, 5 * 4)));

  // 4. The classic off-by-one. Native code would silently corrupt the next
  //    object; SGXBounds traps before the store retires.
  try {
    sgxbounds.Store<uint32_t>(cpu, TaggedAdd(array, n * 4), 0xdeadbeef);
    std::printf("BUG: overflow was not caught!\n");
    return 1;
  } catch (const SimTrap& trap) {
    std::printf("off-by-one caught: %s\n", trap.what());
  }

  // 5. The accounting every experiment in this repo is built on.
  const PerfCounters& counters = cpu.counters();
  std::printf("\nsimulation account:\n");
  std::printf("  cycles:             %llu\n", (unsigned long long)counters.cycles);
  std::printf("  bounds checks:      %llu\n", (unsigned long long)counters.bounds_checks);
  std::printf("  bounds violations:  %llu\n", (unsigned long long)counters.bounds_violations);
  std::printf("  metadata loads:     %llu (LB footer reads)\n",
              (unsigned long long)counters.metadata_loads);
  std::printf("  peak virtual mem:   %llu bytes\n",
              (unsigned long long)enclave.PeakVirtualBytes());
  std::printf("\nquickstart OK\n");
  return 0;
}
