// Heartbleed, three ways (paper SS7): the same heartbeat over-read served by
// the Apache analogue running (1) native, (2) under SGXBounds fail-fast,
// (3) under SGXBounds with boundless memory - showing leak, detection, and
// failure-oblivious continuation respectively.
//
// Build & run:  ./build/examples/heartbleed_demo

#include <cstdio>
#include <string>

#include "src/apps/httpd.h"

using namespace sgxb;

namespace {

void RunVariant(const char* title, PolicyKind kind, OobPolicy oob) {
  std::printf("== %s ==\n", title);
  PolicyOptions options;
  options.oob = oob;
  MachineSpec spec;
  spec.space_bytes = 2 * kGiB;
  spec.heap_reserve = 512 * kMiB;

  const RunResult r = RunPolicyKind(kind, spec, options, [&](auto& env) {
    using P = std::decay_t<decltype(env.policy)>;
    SyscallShim shim(&env.enclave);
    Httpd<P> server(&env.policy, &env.cpu, &shim);

    // The attacker sends a 16-byte heartbeat claiming 4096 bytes.
    bool survived = false;
    const auto echoed = server.Heartbeat(/*actual_payload=*/16, /*claimed_len=*/4096,
                                         &survived);
    // What did the attacker get back?
    std::string printable;
    for (size_t i = 16; i < echoed.size(); ++i) {
      const char c = static_cast<char>(echoed[i]);
      if (c >= ' ' && c <= '~') {
        printable.push_back(c);
      }
    }
    if (printable.find("PRIVATE-KEY") != std::string::npos) {
      std::printf("  attacker recovered: \"...%s...\"  <-- CONFIDENTIALITY LOST\n",
                  printable.substr(0, 48).c_str());
    } else {
      std::printf("  attacker recovered %zu bytes, all zeros - nothing leaked\n",
                  echoed.size() - 16);
    }
    const uint32_t cid = server.OpenConnection();
    server.ServeGet(cid, "GET / HTTP/1.1\r\n\r\n");
    std::printf("  server still serving requests: yes\n");
  });
  if (r.crashed) {
    std::printf("  defense fired: %s\n", r.trap_message.c_str());
    std::printf("  server still serving requests: no (fail-stop)\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Heartbleed inside the enclave (paper SS7, Apache+OpenSSL analogue)\n\n");
  RunVariant("native SGX: shielded execution alone does not stop memory bugs",
             PolicyKind::kNative, OobPolicy::kFailFast);
  RunVariant("SGXBounds, fail-fast: attack detected, worker halted",
             PolicyKind::kSgxBounds, OobPolicy::kFailFast);
  RunVariant("SGXBounds, boundless memory: zeros echoed, availability preserved",
             PolicyKind::kSgxBounds, OobPolicy::kBoundless);
  return 0;
}
