// Policy comparison: "compile" one program four ways and compare cost and
// protection - the experiment design behind every figure in the paper, in
// fifty lines of user code.
//
// Build & run:  ./build/examples/policy_comparison

#include <cstdio>

#include "src/common/stats.h"
#include "src/policy/run.h"

using namespace sgxb;

namespace {

// One program: build a linked list, then walk it (pointer-chasing, the
// access pattern that separates the four schemes most sharply).
template <typename P>
void LinkedListProgram(Env<P>& env) {
  using Ptr = typename P::Ptr;
  auto& cpu = env.cpu;
  constexpr uint32_t kNodes = 20000;
  constexpr uint32_t kNodeBytes = 32;  // [0]=next ptr slot, [8]=value

  Ptr head = env.policy.Malloc(cpu, kNodeBytes);
  env.policy.template StoreField<uint64_t>(cpu, head, 8, 0);
  Ptr tail = head;
  for (uint32_t i = 1; i < kNodes; ++i) {
    Ptr node = env.policy.Malloc(cpu, kNodeBytes);
    env.policy.template StoreField<uint64_t>(cpu, node, 8, i);
    env.policy.StorePtr(cpu, tail, node);  // tail->next = node
    tail = node;
  }
  // Walk and sum.
  uint64_t sum = 0;
  Ptr cursor = head;
  while (env.policy.AddrOf(cursor) != 0) {
    sum += env.policy.template LoadField<uint64_t>(cpu, cursor, 8);
    cursor = env.policy.LoadPtr(cpu, cursor);
    cpu.Branch();
  }
  volatile uint64_t sink = sum;
  (void)sink;
}

}  // namespace

int main() {
  std::printf("One program, four hardening schemes (simulated SGX enclave)\n\n");
  MachineSpec spec;
  spec.space_bytes = 1 * kGiB;
  spec.heap_reserve = 256 * kMiB;

  RunResult native;
  std::printf("%-11s %14s %12s %10s %12s %8s\n", "scheme", "cycles", "vs native",
              "checks", "peak mem", "BTs");
  for (PolicyKind kind : kAllPolicies) {
    const RunResult r = RunPolicyKind(kind, spec, PolicyOptions{},
                                      [](auto& env) { LinkedListProgram(env); });
    if (kind == PolicyKind::kNative) {
      native = r;
    }
    std::printf("%-11s %14llu %12s %10llu %12s %8u\n", PolicyName(kind),
                (unsigned long long)r.cycles,
                FormatRatio(r.CyclesRatioOver(native)).c_str(),
                (unsigned long long)r.counters.bounds_checks,
                FormatBytes(r.peak_vm_bytes).c_str(), r.mpx_bt_count);
  }

  std::printf("\nexpected ordering (paper SS6.2 on pointer-chasing code):\n");
  std::printf("  native < SGXBounds < ASan < MPX in cycles;\n");
  std::printf("  SGXBounds ~ native in memory; ASan dominated by its 512 MB shadow.\n");
  return 0;
}
