// Boundless memory demo (paper SS4.2): a buggy request parser that survives
// out-of-bounds requests under failure-oblivious computing.
//
// A toy server copies request fields into a fixed record. Requests with a
// corrupted length overflow the record: fail-fast mode kills the server on
// the first bad request; boundless mode absorbs the stray writes in the
// 1 MiB LRU overlay and keeps all subsequent good requests flowing.
//
// Build & run:  ./build/examples/boundless_server

#include <cstdio>
#include <string>
#include <vector>

#include "src/sgxbounds/bounds_runtime.h"

using namespace sgxb;

namespace {

struct Request {
  std::string payload;
  uint32_t claimed_len;  // attacker-controlled
};

// Parses a request into a fixed 64-byte record; buggy: trusts claimed_len.
bool HandleRequest(SgxBoundsRuntime& rt, Cpu& cpu, const Request& request) {
  try {
    TaggedPtr record = rt.Malloc(cpu, 64);
    for (uint32_t i = 0; i < request.claimed_len; ++i) {
      const uint8_t byte = i < request.payload.size()
                               ? static_cast<uint8_t>(request.payload[i])
                               : 0;
      rt.Store<uint8_t>(cpu, TaggedAdd(record, i), byte);
    }
    rt.Free(cpu, record);
    return true;
  } catch (const SimTrap& trap) {
    std::printf("    server died: %s\n", trap.what());
    return false;
  }
}

int ServeAll(OobPolicy policy, const std::vector<Request>& requests) {
  EnclaveConfig config;
  Enclave enclave(config);
  Heap heap(&enclave, 64 * kMiB);
  SgxBoundsRuntime rt(&enclave, &heap, policy);
  Cpu& cpu = enclave.main_cpu();

  int served = 0;
  for (const Request& request : requests) {
    if (!HandleRequest(rt, cpu, request)) {
      break;  // fail-stop: the process is gone
    }
    ++served;
  }
  if (policy == OobPolicy::kBoundless) {
    const BoundlessStats& stats = rt.boundless().stats();
    std::printf("    overlay: %llu redirected stores, %llu chunks, %llu evictions\n",
                (unsigned long long)stats.redirected_stores,
                (unsigned long long)stats.chunk_allocs,
                (unsigned long long)stats.chunk_evictions);
  }
  return served;
}

}  // namespace

int main() {
  std::printf("Boundless memory blocks (paper SS4.2)\n\n");

  std::vector<Request> requests;
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.payload = "good request #" + std::to_string(i);
    r.claimed_len = static_cast<uint32_t>(r.payload.size());
    if (i == 3 || i == 7) {
      r.claimed_len = 5000;  // integer-mangled length: overflows the record
      r.payload = "evil request";
    }
    requests.push_back(std::move(r));
  }

  std::printf("fail-fast mode (default): first bad request kills the server\n");
  const int failfast = ServeAll(OobPolicy::kFailFast, requests);
  std::printf("    requests served before death: %d / %zu\n\n", failfast, requests.size());

  std::printf("boundless mode: stray writes land in the bounded LRU overlay\n");
  const int boundless = ServeAll(OobPolicy::kBoundless, requests);
  std::printf("    requests served: %d / %zu\n\n", boundless, requests.size());

  return (failfast == 3 && boundless == 10) ? 0 : 1;
}
